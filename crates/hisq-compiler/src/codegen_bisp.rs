//! The Distributed-HISQ code generator.
//!
//! Each controller receives its **own** instruction stream; controllers
//! run asynchronously and re-align only where physics demands it:
//!
//! - two-qubit gates emit a pair of nearby `sync` instructions with the
//!   **booking advance** (§4.2): the `sync` is hoisted to just after the
//!   controller's last non-deterministic point, so the calibrated
//!   countdown overlaps the deterministic work in between, and both
//!   sides pad to a common offset `δ = max(D_a, D_b, N)` so the triggers
//!   commit at the same cycle with zero overhead whenever the
//!   deterministic work covers the link latency;
//! - measurement results travel **directly** from producer to consumer
//!   (`send`/`recv`), so independent feedback operations execute
//!   simultaneously;
//! - program repetitions open with a region-level `sync` against the
//!   root router.

use std::collections::BTreeMap;

use hisq_core::NodeAddr;
use hisq_net::Topology;
use hisq_quantum::{Circuit, Operation};

use crate::codewords::{CodewordTable, PORT_GATE, PORT_READOUT};
use crate::emit::StreamBuilder;
use crate::{CompileError, CompileStats, CompiledSystem, CycleDurations, Scheme};

/// Address of the local measurement FIFO (`hisq_core::MEAS_FIFO_ADDR`).
const MEAS_FIFO: NodeAddr = 0xFFF;

/// Options for the BISP backend.
#[derive(Debug, Clone)]
pub struct BispOptions {
    /// Hoist `sync` instructions ahead of deterministic work (the core
    /// BISP optimization). Disabling reproduces the QubiC-2.0-style
    /// placement immediately before the synchronization point.
    pub booking_advance: bool,
    /// Number of program repetitions; each opens with a region-level
    /// synchronization (§2.1.4).
    pub shots: u32,
    /// Operation durations in TCU cycles.
    pub durations: CycleDurations,
}

impl Default for BispOptions {
    fn default() -> BispOptions {
        BispOptions {
            booking_advance: true,
            shots: 1,
            durations: CycleDurations::PAPER,
        }
    }
}

/// Producer/consumer wiring derived from the dynamic circuit: which
/// controller produces each condition bit, and who must receive each
/// measurement result.
#[derive(Debug, Default)]
struct Wiring {
    /// measurement instruction index → consumer controllers (one entry
    /// per consuming conditional instruction, in circuit order).
    consumers: BTreeMap<usize, Vec<NodeAddr>>,
    /// conditional instruction index → producer controller per condition
    /// bit, in condition-bit order.
    producers: BTreeMap<usize, Vec<NodeAddr>>,
}

fn wire(circuit: &Circuit) -> Result<Wiring, CompileError> {
    let mut wiring = Wiring::default();
    // clbit → (producing instruction index, producing controller).
    let mut last_writer: BTreeMap<usize, (usize, NodeAddr)> = BTreeMap::new();
    for (idx, instruction) in circuit.instructions().iter().enumerate() {
        if let Some(condition) = &instruction.condition {
            let qubits = instruction.qubits();
            if qubits.len() != 1 {
                return Err(CompileError::UnsupportedConditional { index: idx });
            }
            let consumer = qubits[0] as NodeAddr;
            let mut producers = Vec::new();
            for clbit in condition.clbits() {
                let &(measure_idx, producer) = last_writer
                    .get(&clbit)
                    .ok_or(CompileError::ConditionBeforeMeasurement { index: idx, clbit })?;
                wiring
                    .consumers
                    .entry(measure_idx)
                    .or_default()
                    .push(consumer);
                producers.push(producer);
            }
            wiring.producers.insert(idx, producers);
        }
        if let Operation::Measure { qubit, clbit } = instruction.op {
            last_writer.insert(clbit, (idx, qubit as NodeAddr));
        }
    }
    Ok(wiring)
}

/// Compiles a dynamic circuit for Distributed-HISQ execution on
/// `topology` (qubit `i` is controlled by controller `i`).
///
/// # Errors
///
/// Returns [`CompileError`] when the circuit does not fit the topology,
/// a two-qubit gate spans non-adjacent controllers, a condition guards a
/// multi-qubit operation, or generated assembly fails to assemble (a
/// code-generation bug).
pub fn compile_bisp(
    circuit: &Circuit,
    topology: &Topology,
    options: &BispOptions,
) -> Result<CompiledSystem, CompileError> {
    let n = circuit.num_qubits();
    if n > topology.num_controllers() {
        return Err(CompileError::TooManyQubits {
            qubits: n,
            controllers: topology.num_controllers(),
        });
    }
    let root = topology.root_router().ok_or(CompileError::NoRootRouter)?;
    let wiring = wire(circuit)?;
    let d = options.durations;

    let mut builders: BTreeMap<NodeAddr, StreamBuilder> = (0..topology.num_controllers() as u16)
        .map(|addr| (addr, StreamBuilder::new(addr)))
        .collect();
    let mut table = CodewordTable::new();
    let mut stats = CompileStats::default();

    let shots = options.shots.max(1);
    for _ in 0..shots {
        if shots > 1 {
            for builder in builders.values_mut() {
                builder.region_sync(root, 0);
                stats.region_syncs += 1;
            }
        }
        emit_body(
            circuit,
            topology,
            options,
            &wiring,
            &mut builders,
            &mut table,
            &mut stats,
        )?;
    }

    let mut programs = BTreeMap::new();
    let mut sources = BTreeMap::new();
    for (addr, builder) in builders {
        let (source, program) = builder.finish().map_err(CompileError::Asm)?;
        stats.instructions += program.len() as u64;
        sources.insert(addr, source);
        programs.insert(addr, program);
    }

    Ok(CompiledSystem {
        scheme: Scheme::Bisp,
        programs,
        sources,
        bindings: table.into_bindings(),
        num_qubits: n,
        hub: None,
        durations: d,
        stats,
    })
}

#[allow(clippy::too_many_arguments)]
fn emit_body(
    circuit: &Circuit,
    topology: &Topology,
    options: &BispOptions,
    wiring: &Wiring,
    builders: &mut BTreeMap<NodeAddr, StreamBuilder>,
    table: &mut CodewordTable,
    stats: &mut CompileStats,
) -> Result<(), CompileError> {
    let d = options.durations;
    let root = topology.root_router().expect("checked by caller");

    for (idx, instruction) in circuit.instructions().iter().enumerate() {
        match (&instruction.op, &instruction.condition) {
            (Operation::Gate { gate, qubits }, None) if qubits.len() == 1 => {
                let addr = qubits[0] as NodeAddr;
                let cw = table.gate(addr, *gate, qubits);
                let builder = builders.get_mut(&addr).expect("controller exists");
                builder.cw(PORT_GATE, cw);
                builder.wait(d.single);
            }
            (Operation::Gate { gate, qubits }, None) => {
                let a = qubits[0] as NodeAddr;
                let b = qubits[1] as NodeAddr;
                if !topology.mesh_neighbors(a).contains(&b) {
                    return Err(CompileError::NonAdjacentGate {
                        index: idx,
                        qubits: (qubits[0], qubits[1]),
                    });
                }
                let n_link = topology.neighbor_latency();
                let cw_a = table.gate(a, *gate, qubits);
                let cw_b = table.pulse(b);
                if options.booking_advance {
                    // Optimal booking: each side books exactly N cycles
                    // (the calibrated countdown) ahead of the trigger, so
                    // any pre-existing deterministic work covers the
                    // communication latency and both triggers pad to the
                    // common offset N → commit at max(B_a, B_b) + N with
                    // zero overhead whenever coverage is full (§4.4).
                    for (addr, peer, cw) in [(a, b, cw_a), (b, a, cw_b)] {
                        let builder = builders.get_mut(&addr).expect("controller exists");
                        let covered = builder.sync_covering(peer, n_link);
                        builder.wait(n_link - covered);
                        builder.cw(PORT_GATE, cw);
                        builder.mark_blocker();
                        builder.wait(d.two_qubit);
                    }
                } else {
                    for (addr, peer, cw) in [(a, b, cw_a), (b, a, cw_b)] {
                        let builder = builders.get_mut(&addr).expect("controller exists");
                        builder.sync_here(peer);
                        builder.wait(n_link);
                        builder.cw(PORT_GATE, cw);
                        builder.mark_blocker();
                        builder.wait(d.two_qubit);
                    }
                }
                stats.nearby_syncs += 2;
            }
            (Operation::Gate { gate, qubits }, Some(condition)) => {
                if qubits.len() != 1 {
                    return Err(CompileError::UnsupportedConditional { index: idx });
                }
                let addr = qubits[0] as NodeAddr;
                let producers = wiring.producers.get(&idx).expect("wired").clone();
                let value = match condition {
                    hisq_quantum::Condition::Bit { value, .. } => *value,
                    hisq_quantum::Condition::Parity { value, .. } => *value,
                };
                let cw = table.gate(addr, *gate, qubits);
                let builder = builders.get_mut(&addr).expect("controller exists");
                for (i, producer) in producers.iter().enumerate() {
                    builder.recv("t2", *producer);
                    if i == 0 {
                        builder.raw("mv t1, t2");
                    } else {
                        builder.raw("xor t1, t1, t2");
                    }
                    stats.recvs += 1;
                }
                let skip = builder.fresh_label("skip");
                // Skip the body when the parity does not match `value`.
                if value {
                    builder.raw(format!("beqz t1, {skip}"));
                } else {
                    builder.raw(format!("bnez t1, {skip}"));
                }
                builder.cw(PORT_GATE, cw);
                builder.wait(d.gate_cycles(*gate));
                builder.label(&skip);
                builder.mark_blocker();
                stats.feedbacks += 1;
            }
            (Operation::Measure { qubit, clbit: _ }, None) => {
                let addr = *qubit as NodeAddr;
                let cw = table.measure(addr, *qubit);
                let builder = builders.get_mut(&addr).expect("controller exists");
                builder.cw(PORT_READOUT, cw);
                builder.wait(d.measurement);
                builder.recv("t0", MEAS_FIFO);
                builder.mark_blocker();
                if let Some(consumers) = wiring.consumers.get(&idx) {
                    for &consumer in consumers {
                        builder.send(consumer, "t0");
                        stats.sends += 1;
                    }
                }
            }
            (Operation::Reset { qubit }, None) => {
                let addr = *qubit as NodeAddr;
                let cw = table.reset(addr, *qubit);
                let builder = builders.get_mut(&addr).expect("controller exists");
                builder.cw(PORT_GATE, cw);
                builder.wait(d.reset);
            }
            (Operation::Delay { qubit, duration_ns }, None) => {
                let addr = *qubit as NodeAddr;
                let builder = builders.get_mut(&addr).expect("controller exists");
                builder.wait(duration_ns.div_ceil(hisq_isa::CYCLE_NS));
            }
            (Operation::Barrier { .. }, None) => {
                for builder in builders.values_mut() {
                    builder.region_sync(root, 0);
                    stats.region_syncs += 1;
                }
            }
            (Operation::Delay { qubit, duration_ns }, Some(condition)) => {
                // A conditioned idle (e.g. the multi-round logical-S
                // sub-circuit duration in the QEC benchmarks).
                let addr = *qubit as NodeAddr;
                let producers = wiring.producers.get(&idx).expect("wired").clone();
                let value = match condition {
                    hisq_quantum::Condition::Bit { value, .. } => *value,
                    hisq_quantum::Condition::Parity { value, .. } => *value,
                };
                let builder = builders.get_mut(&addr).expect("controller exists");
                for (i, producer) in producers.iter().enumerate() {
                    builder.recv("t2", *producer);
                    if i == 0 {
                        builder.raw("mv t1, t2");
                    } else {
                        builder.raw("xor t1, t1, t2");
                    }
                    stats.recvs += 1;
                }
                let skip = builder.fresh_label("skip");
                if value {
                    builder.raw(format!("beqz t1, {skip}"));
                } else {
                    builder.raw(format!("bnez t1, {skip}"));
                }
                builder.wait(duration_ns.div_ceil(hisq_isa::CYCLE_NS));
                builder.label(&skip);
                builder.mark_blocker();
                stats.feedbacks += 1;
            }
            (_, Some(_)) => {
                return Err(CompileError::UnsupportedConditional { index: idx });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_net::TopologyBuilder;
    use hisq_quantum::Condition;

    fn linear_topology(n: usize) -> Topology {
        TopologyBuilder::linear(n)
            .neighbor_latency(5)
            .router_arity(4)
            .build()
    }

    #[test]
    fn rejects_oversized_circuits() {
        let topo = linear_topology(2);
        let circuit = Circuit::new(5, 1);
        let err = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::TooManyQubits { .. }));
    }

    #[test]
    fn rejects_non_adjacent_two_qubit_gates() {
        let topo = linear_topology(4);
        let mut circuit = Circuit::new(4, 1);
        circuit.cx(0, 3);
        let err = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::NonAdjacentGate { .. }));
    }

    #[test]
    fn two_qubit_gate_emits_paired_syncs() {
        let topo = linear_topology(2);
        let mut circuit = Circuit::new(2, 1);
        circuit.h(0);
        circuit.cz(0, 1);
        let compiled = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap();
        assert_eq!(compiled.stats.nearby_syncs, 2);
        let src0 = &compiled.sources[&0];
        let src1 = &compiled.sources[&1];
        assert!(src0.contains("sync 1"), "{src0}");
        assert!(src1.contains("sync 0"), "{src1}");
        // The H's 5-cycle duration on controller 0 is deterministic work
        // the booking overlaps: the sync is hoisted above that wait,
        // before the CZ trigger.
        let sync_pos = src0.find("sync 1").unwrap();
        let cz_pos = src0.rfind("cw.i.i").unwrap();
        assert!(sync_pos < cz_pos, "sync precedes the CZ trigger:\n{src0}");
        let wait_pos = src0.find("waiti 5").unwrap();
        assert!(
            sync_pos < wait_pos,
            "booking advance overlaps the H duration:\n{src0}"
        );
    }

    #[test]
    fn no_booking_advance_places_sync_late() {
        let topo = linear_topology(2);
        let mut circuit = Circuit::new(2, 1);
        circuit.h(0);
        circuit.cz(0, 1);
        let options = BispOptions {
            booking_advance: false,
            ..BispOptions::default()
        };
        let compiled = compile_bisp(&circuit, &topo, &options).unwrap();
        let src0 = &compiled.sources[&0];
        let sync_pos = src0.find("sync 1").unwrap();
        let h_pos = src0.find("cw.i.i").unwrap();
        assert!(
            h_pos < sync_pos,
            "sync placed immediately before the point:\n{src0}"
        );
    }

    #[test]
    fn measurement_wires_producer_to_consumer() {
        let topo = linear_topology(2);
        let mut circuit = Circuit::new(2, 1);
        circuit.measure(0, 0);
        circuit.x_if(1, Condition::bit(0, true));
        let compiled = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap();
        assert_eq!(compiled.stats.sends, 1);
        assert_eq!(compiled.stats.recvs, 1);
        assert_eq!(compiled.stats.feedbacks, 1);
        assert!(compiled.sources[&0].contains("recv t0, 4095"));
        assert!(compiled.sources[&0].contains("send 1, t0"));
        assert!(compiled.sources[&1].contains("recv t2, 0"));
        assert!(compiled.sources[&1].contains("beqz t1"));
    }

    #[test]
    fn parity_condition_receives_all_bits() {
        let topo = linear_topology(3);
        let mut circuit = Circuit::new(3, 2);
        circuit.measure(0, 0);
        circuit.measure(1, 1);
        circuit.x_if(2, Condition::parity(vec![0, 1], false));
        let compiled = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap();
        let src2 = &compiled.sources[&2];
        assert!(src2.contains("recv t2, 0"));
        assert!(src2.contains("recv t2, 1"));
        assert!(src2.contains("xor t1, t1, t2"));
        assert!(src2.contains("bnez t1"), "value=false skips on parity 1");
    }

    #[test]
    fn condition_before_measurement_is_an_error() {
        let topo = linear_topology(2);
        let mut circuit = Circuit::new(2, 1);
        circuit.x_if(1, Condition::bit(0, true));
        let err = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            CompileError::ConditionBeforeMeasurement { clbit: 0, .. }
        ));
    }

    #[test]
    fn shots_prepend_region_syncs() {
        let topo = linear_topology(2);
        let mut circuit = Circuit::new(2, 1);
        circuit.h(0);
        let options = BispOptions {
            shots: 3,
            ..BispOptions::default()
        };
        let compiled = compile_bisp(&circuit, &topo, &options).unwrap();
        let root = topo.root_router().unwrap();
        let src = &compiled.sources[&0];
        assert_eq!(src.matches(&format!("sync {root}")).count(), 3);
        assert_eq!(compiled.stats.region_syncs, 6); // 2 controllers × 3
    }

    #[test]
    fn all_generated_sources_assemble() {
        let topo = linear_topology(3);
        let mut circuit = Circuit::new(3, 2);
        circuit.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        circuit.x_if(2, Condition::parity(vec![0, 1], true));
        circuit.reset(0);
        circuit.delay(2, 1000);
        let compiled = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap();
        for (addr, program) in &compiled.programs {
            assert!(!program.is_empty(), "controller {addr} has a program");
        }
        assert!(compiled.stats.instructions > 0);
    }
}
