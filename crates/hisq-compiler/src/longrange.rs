//! Long-range CNOT rewriting (Figure 14 of the paper).
//!
//! Logical circuits are mapped onto an interleaved physical layout —
//! data qubit `i` at physical site `2i`, measurement ancillas at the odd
//! sites — and every CNOT between non-adjacent sites is (with a
//! configurable probability, following the paper's *"randomly
//! substituting CNOTs between non-adjacent qubits with long-range
//! CNOTs"*) replaced by the **constant-depth dynamic-circuit gadget**
//! based on gate teleportation:
//!
//! 1. Bell pairs are prepared on disjoint ancilla pairs along the chain;
//! 2. entanglement swapping (Bell measurements at the pair junctions)
//!    fuses them into one long-range Bell pair;
//! 3. the CNOT is gate-teleported through that pair;
//! 4. Pauli corrections conditioned on measurement **parities** (the
//!    XOR of Figure 14) repair the by-products.
//!
//! Non-substituted long-range CNOTs fall back to unitary SWAP routing,
//! whose depth grows linearly with distance — exactly the trade-off the
//! dynamic circuit removes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hisq_quantum::{Circuit, CircuitError, Condition, Gate, Instruction, Operation};

/// Options for the physical mapping pass.
#[derive(Debug, Clone)]
pub struct LongRangeConfig {
    /// Probability that a non-adjacent CNOT becomes a dynamic gadget
    /// (the rest are SWAP-routed). The paper substitutes randomly; 1.0
    /// makes every long-range CNOT dynamic.
    pub substitution_probability: f64,
    /// RNG seed for the random substitution choice.
    pub seed: u64,
    /// Apply entanglement-swapping corrections immediately on the chain
    /// (more, simultaneous feedback — the Figure 14/16 flavour) instead
    /// of deferring all parities to the final corrections.
    pub immediate_corrections: bool,
}

impl Default for LongRangeConfig {
    fn default() -> LongRangeConfig {
        LongRangeConfig {
            substitution_probability: 1.0,
            seed: 0x000F_1614,
            immediate_corrections: false,
        }
    }
}

/// Statistics of a mapping pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LongRangeStats {
    /// CNOTs replaced by the dynamic gadget.
    pub substituted: usize,
    /// CNOTs routed with unitary SWAP chains.
    pub swap_routed: usize,
    /// CNOTs that were already nearest-neighbour.
    pub direct: usize,
}

/// The result of mapping a logical circuit to the interleaved layout.
#[derive(Debug, Clone)]
pub struct PhysicalCircuit {
    /// The physical dynamic circuit.
    pub circuit: Circuit,
    /// Physical site of each logical qubit (`2i`).
    pub data_sites: Vec<usize>,
    /// Mapping statistics.
    pub stats: LongRangeStats,
}

struct PhysBuilder {
    instructions: Vec<Instruction>,
    num_qubits: usize,
    next_clbit: usize,
}

impl PhysBuilder {
    fn gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.instructions.push(Instruction {
            op: Operation::Gate {
                gate,
                qubits: qubits.to_vec(),
            },
            condition: None,
        });
    }

    fn gate_if(&mut self, gate: Gate, qubits: &[usize], condition: Condition) {
        self.instructions.push(Instruction {
            op: Operation::Gate {
                gate,
                qubits: qubits.to_vec(),
            },
            condition: Some(condition),
        });
    }

    fn measure(&mut self, qubit: usize) -> usize {
        let clbit = self.next_clbit;
        self.next_clbit += 1;
        self.instructions.push(Instruction {
            op: Operation::Measure { qubit, clbit },
            condition: None,
        });
        clbit
    }

    fn reset(&mut self, qubit: usize) {
        self.instructions.push(Instruction {
            op: Operation::Reset { qubit },
            condition: None,
        });
    }

    /// Emits the dynamic long-range CNOT gadget over the chain
    /// `c, ancillas..., t` (all physically adjacent steps).
    fn dynamic_cnot(&mut self, c: usize, t: usize, ancillas: &[usize], immediate: bool) {
        let m = ancillas.len();
        assert!(m >= 1, "dynamic gadget needs at least one ancilla");

        if m == 1 {
            // Single-ancilla fan-out gadget: CX(c,a); CX(a,t); X-measure a;
            // Z on c conditioned on the outcome.
            let a = ancillas[0];
            self.gate(Gate::Cx, &[c, a]);
            self.gate(Gate::Cx, &[a, t]);
            self.gate(Gate::H, &[a]);
            let bit = self.measure(a);
            self.gate_if(Gate::Z, &[c], Condition::parity(vec![bit], true));
            self.reset(a);
            return;
        }

        // Bell pairs over a maximal even prefix of the ancilla chain.
        let paired = if m % 2 == 0 { m } else { m - 1 };
        for k in (0..paired).step_by(2) {
            self.gate(Gate::H, &[ancillas[k]]);
            self.gate(Gate::Cx, &[ancillas[k], ancillas[k + 1]]);
        }

        // Entanglement swapping at pair junctions.
        let mut p_bits = Vec::new();
        let mut q_bits = Vec::new();
        let mut k = 1;
        while k + 1 < paired {
            let x = ancillas[k];
            let y = ancillas[k + 1];
            self.gate(Gate::Cx, &[x, y]);
            self.gate(Gate::H, &[x]);
            let p = self.measure(x);
            let q = self.measure(y);
            p_bits.push(p);
            q_bits.push(q);
            self.reset(x);
            self.reset(y);
            k += 2;
        }

        // The b-side half of the fused pair.
        let mut b_end = ancillas[paired - 1];
        if immediate && !(p_bits.is_empty() && q_bits.is_empty()) {
            // Repair the fused pair on the spot: one conditional per
            // junction outcome — these feedbacks are mutually
            // independent, i.e. *simultaneous feedback* (§2.1.2).
            for &q in &q_bits {
                self.gate_if(Gate::X, &[b_end], Condition::parity(vec![q], true));
            }
            for &p in &p_bits {
                self.gate_if(Gate::Z, &[b_end], Condition::parity(vec![p], true));
            }
            p_bits.clear();
            q_bits.clear();
        }
        if m % 2 == 1 {
            // Odd chain: shuttle the Bell half one site toward the target.
            let spare = ancillas[m - 1];
            self.gate(Gate::Swap, &[b_end, spare]);
            b_end = spare;
        }

        // Gate teleportation of the CNOT through the fused pair.
        self.gate(Gate::Cx, &[c, ancillas[0]]);
        let m1 = self.measure(ancillas[0]);
        self.gate(Gate::Cx, &[b_end, t]);
        self.gate(Gate::H, &[b_end]);
        let m2 = self.measure(b_end);

        // Final parity corrections (the XOR of Figure 14).
        let mut x_parity = vec![m1];
        x_parity.extend(&q_bits);
        self.gate_if(Gate::X, &[t], Condition::parity(x_parity, true));
        let mut z_parity = vec![m2];
        z_parity.extend(&p_bits);
        self.gate_if(Gate::Z, &[c], Condition::parity(z_parity, true));

        self.reset(ancillas[0]);
        self.reset(b_end);
    }

    /// Unitary fallback: shuttle `c` next to `t` with SWAPs and back.
    fn swap_routed_cnot(&mut self, c: usize, t: usize, ancillas: &[usize]) {
        for &a in ancillas {
            let prev = if a == ancillas[0] { c } else { a - 1 };
            self.gate(Gate::Swap, &[prev, a]);
        }
        let moved = *ancillas.last().expect("non-empty chain");
        self.gate(Gate::Cx, &[moved, t]);
        for &a in ancillas.iter().rev() {
            let prev = if a == ancillas[0] { c } else { a - 1 };
            self.gate(Gate::Swap, &[prev, a]);
        }
    }
}

/// Decomposes a two-qubit gate into CNOTs plus single-qubit gates.
fn decompose_2q(gate: Gate, a: usize, b: usize) -> Vec<(Gate, Vec<usize>)> {
    match gate {
        Gate::Cx => vec![(Gate::Cx, vec![a, b])],
        Gate::Cz => vec![
            (Gate::H, vec![b]),
            (Gate::Cx, vec![a, b]),
            (Gate::H, vec![b]),
        ],
        Gate::Cphase(theta) => vec![
            (Gate::Phase(theta / 2.0), vec![a]),
            (Gate::Cx, vec![a, b]),
            (Gate::Phase(-theta / 2.0), vec![b]),
            (Gate::Cx, vec![a, b]),
            (Gate::Phase(theta / 2.0), vec![b]),
        ],
        Gate::Swap => vec![
            (Gate::Cx, vec![a, b]),
            (Gate::Cx, vec![b, a]),
            (Gate::Cx, vec![a, b]),
        ],
        other => panic!("{other:?} is not a two-qubit gate"),
    }
}

/// Maps a logical circuit to the interleaved physical layout, rewriting
/// long-range CNOTs per the configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from physical-circuit construction (only
/// possible on malformed logical input).
pub fn map_to_physical(
    logical: &Circuit,
    config: &LongRangeConfig,
) -> Result<PhysicalCircuit, CircuitError> {
    let n = logical.num_qubits();
    let phys_qubits = if n == 0 { 0 } else { 2 * n - 1 };
    let site = |q: usize| 2 * q;
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut builder = PhysBuilder {
        instructions: Vec::new(),
        num_qubits: phys_qubits,
        next_clbit: logical.num_clbits(),
    };
    let mut stats = LongRangeStats::default();

    for instruction in logical.instructions() {
        match &instruction.op {
            Operation::Gate { gate, qubits } if gate.arity() == 2 => {
                assert!(
                    instruction.condition.is_none(),
                    "conditional two-qubit gates are not supported by the mapper"
                );
                for (g, operands) in decompose_2q(*gate, qubits[0], qubits[1]) {
                    if g.arity() == 1 {
                        builder.gate(g, &[site(operands[0])]);
                        continue;
                    }
                    let (c, t) = (site(operands[0]), site(operands[1]));
                    let (lo, hi) = (c.min(t), c.max(t));
                    if hi - lo == 1 {
                        builder.gate(Gate::Cx, &[c, t]);
                        stats.direct += 1;
                        continue;
                    }
                    let ancillas: Vec<usize> = if c < t {
                        (lo + 1..hi).collect()
                    } else {
                        (lo + 1..hi).rev().collect()
                    };
                    if rng.gen_bool(config.substitution_probability.clamp(0.0, 1.0)) {
                        builder.dynamic_cnot(c, t, &ancillas, config.immediate_corrections);
                        stats.substituted += 1;
                    } else {
                        builder.swap_routed_cnot(c, t, &ancillas);
                        stats.swap_routed += 1;
                    }
                }
            }
            Operation::Gate { gate, qubits } => {
                let mapped = vec![site(qubits[0])];
                builder.instructions.push(Instruction {
                    op: Operation::Gate {
                        gate: *gate,
                        qubits: mapped,
                    },
                    condition: instruction.condition.clone(),
                });
            }
            Operation::Measure { qubit, clbit } => {
                builder.instructions.push(Instruction {
                    op: Operation::Measure {
                        qubit: site(*qubit),
                        clbit: *clbit,
                    },
                    condition: None,
                });
            }
            Operation::Reset { qubit } => builder.reset(site(*qubit)),
            Operation::Barrier { qubits } => {
                let mapped = qubits.iter().map(|&q| site(q)).collect();
                builder.instructions.push(Instruction {
                    op: Operation::Barrier { qubits: mapped },
                    condition: None,
                });
            }
            Operation::Delay { qubit, duration_ns } => {
                builder.instructions.push(Instruction {
                    op: Operation::Delay {
                        qubit: site(*qubit),
                        duration_ns: *duration_ns,
                    },
                    condition: None,
                });
            }
        }
    }

    let mut circuit = Circuit::named(
        format!("{}_physical", logical.name()),
        builder.num_qubits,
        builder.next_clbit.max(1),
    );
    for instruction in builder.instructions {
        circuit.push(instruction)?;
    }
    Ok(PhysicalCircuit {
        circuit,
        data_sites: (0..n).map(site).collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_quantum::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Verifies the gadget acts exactly like CNOT for a given data-qubit
    /// distance, on a batch of random product inputs.
    fn verify_distance(logical_distance: usize, immediate: bool) {
        let n = logical_distance + 1;
        let mut rng = StdRng::seed_from_u64(42 + logical_distance as u64);
        for trial in 0..6 {
            // Random single-qubit preparations on control and target.
            let theta_c = rng.gen_range(0.0..std::f64::consts::PI);
            let phi_c = rng.gen_range(0.0..std::f64::consts::PI);
            let theta_t = rng.gen_range(0.0..std::f64::consts::PI);

            let mut logical = Circuit::new(n, 1);
            logical.gate(Gate::Ry(theta_c), &[0]);
            logical.gate(Gate::Rz(phi_c), &[0]);
            logical.gate(Gate::Ry(theta_t), &[n - 1]);
            logical.cx(0, n - 1);

            let config = LongRangeConfig {
                substitution_probability: 1.0,
                seed: trial,
                immediate_corrections: immediate,
            };
            let physical = map_to_physical(&logical, &config).unwrap();
            assert_eq!(physical.stats.substituted, 1);

            // Reference: same preparation + ideal CNOT on the physical
            // register (ancillas untouched in |0⟩).
            let phys_n = physical.circuit.num_qubits();
            let mut reference = Circuit::new(phys_n, 1);
            reference.gate(Gate::Ry(theta_c), &[0]);
            reference.gate(Gate::Rz(phi_c), &[0]);
            reference.gate(Gate::Ry(theta_t), &[phys_n - 1]);
            reference.cx(0, phys_n - 1);

            let mut rng_run = StdRng::seed_from_u64(1000 + trial);
            let out = StateVector::run(&physical.circuit, &mut rng_run).unwrap();
            let reference_out =
                StateVector::run(&reference, &mut StdRng::seed_from_u64(0)).unwrap();
            let fidelity = out.state.fidelity(&reference_out.state);
            assert!(
                fidelity > 1.0 - 1e-9,
                "distance {logical_distance} immediate={immediate} trial {trial}: \
                 gadget fidelity {fidelity}"
            );
        }
    }

    #[test]
    fn gadget_equals_cnot_distance_1() {
        verify_distance(1, false); // m = 1 ancilla
    }

    #[test]
    fn gadget_equals_cnot_distance_2() {
        verify_distance(2, false); // m = 3 ancillas (odd, swap path)
    }

    #[test]
    fn gadget_equals_cnot_distance_3() {
        verify_distance(3, false); // m = 5 ancillas (one junction)
    }

    #[test]
    fn gadget_equals_cnot_with_immediate_corrections() {
        verify_distance(3, true);
        verify_distance(4, true); // m = 7, two junctions
    }

    #[test]
    fn reversed_direction_gadget() {
        // CNOT with control above target (c > t).
        let mut logical = Circuit::new(3, 1);
        logical.x(2);
        logical.cx(2, 0);
        let physical = map_to_physical(&logical, &LongRangeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let out = StateVector::run(&physical.circuit, &mut rng).unwrap();
        // |1⟩ control flips target: physical sites 4 (control) and 0.
        assert!((out.state.prob_one(0) - 1.0).abs() < 1e-9);
        assert!((out.state.prob_one(4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn swap_routing_fallback_is_correct() {
        let mut logical = Circuit::new(3, 1);
        logical.x(0);
        logical.cx(0, 2);
        let config = LongRangeConfig {
            substitution_probability: 0.0,
            ..LongRangeConfig::default()
        };
        let physical = map_to_physical(&logical, &config).unwrap();
        assert_eq!(physical.stats.swap_routed, 1);
        assert_eq!(physical.stats.substituted, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let out = StateVector::run(&physical.circuit, &mut rng).unwrap();
        assert!((out.state.prob_one(4) - 1.0).abs() < 1e-9); // target flipped
        assert!((out.state.prob_one(0) - 1.0).abs() < 1e-9); // control restored
    }

    #[test]
    fn cz_and_cphase_decompositions_are_exact() {
        // Compare decomposed vs primitive on a 2-qubit state vector.
        for gate in [Gate::Cz, Gate::Cphase(0.7), Gate::Swap] {
            let mut direct = StateVector::new(2);
            direct.apply_gate(Gate::H, &[0]);
            direct.apply_gate(Gate::Ry(0.3), &[1]);
            direct.apply_gate(gate, &[0, 1]);

            let mut decomposed = StateVector::new(2);
            decomposed.apply_gate(Gate::H, &[0]);
            decomposed.apply_gate(Gate::Ry(0.3), &[1]);
            for (g, q) in decompose_2q(gate, 0, 1) {
                decomposed.apply_gate(g, &q);
            }
            let fidelity = direct.fidelity(&decomposed);
            assert!(
                fidelity > 1.0 - 1e-9,
                "{gate:?} decomposition fidelity {fidelity}"
            );
        }
    }

    #[test]
    fn adjacent_data_qubits_use_one_ancilla() {
        let mut logical = Circuit::new(2, 1);
        logical.cx(0, 1);
        let physical = map_to_physical(&logical, &LongRangeConfig::default()).unwrap();
        assert_eq!(physical.circuit.num_qubits(), 3);
        assert_eq!(physical.stats.substituted, 1);
        // One measurement (the X-basis disentangling) plus one feedback.
        assert_eq!(physical.circuit.measurement_count(), 1);
        assert_eq!(physical.circuit.feedback_count(), 1);
    }

    #[test]
    fn mapping_preserves_conditionals_and_measures() {
        let mut logical = Circuit::new(2, 2);
        logical.h(0);
        logical.measure(0, 0);
        logical.x_if(1, Condition::bit(0, true));
        let physical = map_to_physical(&logical, &LongRangeConfig::default()).unwrap();
        assert_eq!(physical.data_sites, vec![0, 2]);
        assert!(physical.circuit.feedback_count() >= 1);
    }
}
