//! JSON serialization of workload selectors, for the scenario-file
//! surface (`hisq run`).
//!
//! Workloads serialize as selectors, not circuits — a scenario names
//! *what to run* (`{"suite": "qft_n10"}`) and the sweep workers
//! regenerate the circuit deterministically, exactly as the in-process
//! sweep grids do.

use hisq_json::{Json, JsonError, ObjReader};

use crate::suite::WorkloadSpec;

impl WorkloadSpec {
    /// Serializes the workload selector:
    /// `{"suite": "qft_n10"}` or
    /// `{"long_range_cnots": {"parallel": 4, "span": 3}}`.
    pub fn to_json(&self) -> Json {
        match self {
            WorkloadSpec::Suite { name } => {
                Json::Object(vec![("suite".into(), Json::str(name.clone()))])
            }
            WorkloadSpec::LongRangeCnots { parallel, span } => Json::Object(vec![(
                "long_range_cnots".into(),
                Json::Object(vec![
                    ("parallel".into(), (*parallel).into()),
                    ("span".into(), (*span).into()),
                ]),
            )]),
        }
    }

    /// Parses a selector serialized by [`WorkloadSpec::to_json`].
    ///
    /// Whether a named suite instance actually exists is checked when
    /// the workload is built (the scenario runner reports an unknown
    /// workload error), not here — the selector grammar stays
    /// independent of the suite registry.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` when the object does not
    /// carry exactly one known selector key, or for wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<WorkloadSpec, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let suite = obj.optional("suite").cloned();
        let long_range = obj.optional("long_range_cnots").cloned();
        obj.reject_unknown()?;
        match (suite, long_range) {
            (Some(name), None) => Ok(WorkloadSpec::Suite {
                name: name.as_str(&format!("{path}.suite"))?.to_owned(),
            }),
            (None, Some(params)) => {
                let params_path = format!("{path}.long_range_cnots");
                let mut params = ObjReader::new(&params, &params_path)?;
                let parallel = params
                    .required("parallel")?
                    .as_usize(&params.field_path("parallel"))?;
                let span = params
                    .required("span")?
                    .as_usize(&params.field_path("span"))?;
                params.reject_unknown()?;
                Ok(WorkloadSpec::LongRangeCnots { parallel, span })
            }
            (None, None) => Err(JsonError::decode(
                path,
                "workload needs a `suite` or `long_range_cnots` selector",
            )),
            (Some(_), Some(_)) => Err(JsonError::decode(
                path,
                "workload has both `suite` and `long_range_cnots`; pick one",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_specs_round_trip() {
        for spec in [
            WorkloadSpec::suite("qft_n10"),
            WorkloadSpec::LongRangeCnots {
                parallel: 4,
                span: 3,
            },
        ] {
            let text = spec.to_json().to_string_compact();
            let back = WorkloadSpec::from_json(&Json::parse(&text).unwrap(), "w").unwrap();
            assert_eq!(spec, back, "{text}");
        }
    }

    #[test]
    fn selector_grammar_is_strict() {
        for (text, needle) in [
            ("{}", "needs a `suite` or `long_range_cnots`"),
            (
                r#"{"suite": "qft_n10", "long_range_cnots": {"parallel": 1, "span": 1}}"#,
                "pick one",
            ),
            (r#"{"workload": "qft_n10"}"#, "unknown field `workload`"),
            (
                r#"{"long_range_cnots": {"parallel": 1}}"#,
                "missing field `span`",
            ),
        ] {
            let err = WorkloadSpec::from_json(&Json::parse(text).unwrap(), "w").unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }
}
