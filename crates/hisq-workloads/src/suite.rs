//! The Figure 15 benchmark suite: named instances, physical mapping,
//! and the topologies they run on.

use hisq_compiler::{map_to_physical, LongRangeConfig, LongRangeStats};
use hisq_net::{Topology, TopologyBuilder};
use hisq_quantum::Circuit;

use crate::adder::vbe_adder;
use crate::bv::{bernstein_vazirani, random_secret};
use crate::logical_t::{logical_t, LogicalTConfig};
use crate::qft::qft;
use crate::w_state::w_state;

/// Suite size: the paper's instances, or scaled-down twins for tests
/// and micro-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// The instance sizes reported in Figure 15.
    Paper,
    /// Small instances with identical structure (fast CI runs).
    Quick,
}

/// One runnable benchmark: the physical dynamic circuit plus the
/// controller grid it expects.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (Figure 15 x-axis label).
    pub name: String,
    /// The physical dynamic circuit (after long-range rewriting, or
    /// natively grid-local for the QEC instances).
    pub physical: Circuit,
    /// Controller grid (width, height).
    pub grid: (usize, usize),
    /// Logical qubit count of the source circuit.
    pub logical_qubits: usize,
    /// Long-range rewriting statistics (None for grid-native instances).
    pub mapping: Option<LongRangeStats>,
}

impl Benchmark {
    /// Builds the topology this benchmark runs on (paper-default link
    /// latencies: 5-cycle mesh edges, 10-cycle tree edges, arity 4).
    pub fn topology(&self) -> Topology {
        TopologyBuilder::grid(self.grid.0, self.grid.1)
            .neighbor_latency(5)
            .router_latency(10)
            .router_arity(4)
            .build()
    }
}

fn mapped(name: impl Into<String>, logical: Circuit, seed: u64) -> Benchmark {
    let config = LongRangeConfig {
        substitution_probability: 1.0,
        seed,
        immediate_corrections: false,
    };
    let logical_qubits = logical.num_qubits();
    let physical = map_to_physical(&logical, &config).expect("mapping is total");
    let width = physical.circuit.num_qubits();
    Benchmark {
        name: name.into(),
        physical: physical.circuit,
        grid: (width, 1),
        logical_qubits,
        mapping: Some(physical.stats),
    }
}

fn qec(name: impl Into<String>, config: &LogicalTConfig) -> Benchmark {
    let instance = logical_t(config);
    Benchmark {
        name: name.into(),
        logical_qubits: instance.active_qubits,
        grid: (instance.width, instance.height),
        physical: instance.circuit,
        mapping: None,
    }
}

/// Assembles the Figure 15 suite.
///
/// Instance-size notes (documented substitutions, see EXPERIMENTS.md):
/// `adder_n*` are VBE adders (3n+1 qubits: 577 → 192 bits, 1153 → 384);
/// `bv_n*` use sparse 16-bit secrets to keep full-suite regeneration
/// under minutes; `qft_n*` are approximate QFTs (degree 8, no final
/// swaps); `logical_t_n432` is one distance-8 lattice-surgery unit
/// (~470 active qubits) and `logical_t_n864` two units in parallel.
pub fn fig15_suite(scale: SuiteScale) -> Vec<Benchmark> {
    match scale {
        SuiteScale::Paper => vec![
            mapped(
                "adder_n577",
                vbe_adder(192, 0x5a5a_5a5a_5a5a, 0x3c3c_3c3c_3c3c),
                1,
            ),
            mapped(
                "adder_n1153",
                vbe_adder(384, 0x5a5a_5a5a_5a5a, 0x3c3c_3c3c_3c3c),
                2,
            ),
            mapped(
                "bv_n400",
                bernstein_vazirani(400, &random_secret(399, 16, 40)),
                3,
            ),
            mapped(
                "bv_n1000",
                bernstein_vazirani(1000, &random_secret(999, 16, 41)),
                4,
            ),
            qec("logical_t_n432", &LogicalTConfig::distance(8)),
            qec(
                "logical_t_n864",
                &LogicalTConfig::distance(8).with_parallel_units(2),
            ),
            mapped("qft_n30", qft(30, 8, false), 5),
            mapped("qft_n100", qft(100, 8, false), 6),
            mapped("qft_n200", qft(200, 8, false), 7),
            mapped("qft_n300", qft(300, 8, false), 8),
            mapped("w_state_n800", w_state(800), 9),
            mapped("w_state_n1000", w_state(1000), 10),
        ],
        SuiteScale::Quick => vec![
            mapped("adder_n13", vbe_adder(4, 0b1010, 0b0110), 1),
            mapped(
                "bv_n16",
                bernstein_vazirani(16, &random_secret(15, 4, 40)),
                3,
            ),
            qec("logical_t_d3", &LogicalTConfig::distance(3)),
            qec(
                "logical_t_d3x2",
                &LogicalTConfig::distance(3).with_parallel_units(2),
            ),
            mapped("qft_n10", qft(10, 5, false), 5),
            mapped("w_state_n12", w_state(12), 9),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_builds_and_fits_its_grids() {
        for bench in fig15_suite(SuiteScale::Quick) {
            assert_eq!(
                bench.physical.num_qubits(),
                bench.grid.0 * bench.grid.1,
                "{}: circuit must exactly cover its grid",
                bench.name
            );
            let topo = bench.topology();
            assert_eq!(topo.num_controllers(), bench.physical.num_qubits());
            assert!(topo.root_router().is_some());
        }
    }

    #[test]
    fn mapped_benchmarks_are_dynamic_circuits() {
        let suite = fig15_suite(SuiteScale::Quick);
        for bench in suite.iter().filter(|b| b.mapping.is_some()) {
            let stats = bench.mapping.unwrap();
            assert!(
                stats.substituted > 0,
                "{}: expected long-range substitutions",
                bench.name
            );
            assert!(
                bench.physical.feedback_count() > 0,
                "{}: dynamic circuits have feedback",
                bench.name
            );
        }
    }

    #[test]
    fn paper_suite_has_figure15_names() {
        // Building the full paper suite is slow; only check the names by
        // construction logic on the quick twin plus the two cheap paper
        // instances.
        let names: Vec<String> = fig15_suite(SuiteScale::Quick)
            .into_iter()
            .map(|b| b.name)
            .collect();
        assert!(names.iter().any(|n| n.starts_with("adder")));
        assert!(names.iter().any(|n| n.starts_with("bv")));
        assert!(names.iter().any(|n| n.starts_with("logical_t")));
        assert!(names.iter().any(|n| n.starts_with("qft")));
        assert!(names.iter().any(|n| n.starts_with("w_state")));
    }

    #[test]
    fn physical_sizes_follow_interleaved_layout() {
        let bench = &fig15_suite(SuiteScale::Quick)[0]; // adder_n13
        assert_eq!(bench.logical_qubits, 13);
        assert_eq!(bench.physical.num_qubits(), 25); // 2n − 1
    }
}
