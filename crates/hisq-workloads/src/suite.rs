//! The Figure 15 benchmark suite: named instances, physical mapping,
//! the topologies they run on, and the [`WorkloadSpec`] enumeration
//! that the sweep engine expands parameter grids over.

use hisq_compiler::{map_to_physical, LongRangeConfig, LongRangeStats};
use hisq_net::{Topology, TopologyBuilder};
use hisq_quantum::{Circuit, Gate};

use crate::adder::vbe_adder;
use crate::bv::{bernstein_vazirani, random_secret};
use crate::logical_t::{logical_t, LogicalTConfig};
use crate::qft::qft;
use crate::w_state::w_state;

/// Suite size: the paper's instances, or scaled-down twins for tests
/// and micro-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// The instance sizes reported in Figure 15.
    Paper,
    /// Small instances with identical structure (fast CI runs).
    Quick,
}

/// One runnable benchmark: the physical dynamic circuit plus the
/// controller grid it expects.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (Figure 15 x-axis label).
    pub name: String,
    /// The physical dynamic circuit (after long-range rewriting, or
    /// natively grid-local for the QEC instances).
    pub physical: Circuit,
    /// Controller grid (width, height).
    pub grid: (usize, usize),
    /// Logical qubit count of the source circuit.
    pub logical_qubits: usize,
    /// Long-range rewriting statistics (None for grid-native instances).
    pub mapping: Option<LongRangeStats>,
}

impl Benchmark {
    /// Builds the topology this benchmark runs on (paper-default link
    /// latencies: 5-cycle mesh edges, 10-cycle tree edges, arity 4).
    pub fn topology(&self) -> Topology {
        TopologyBuilder::grid(self.grid.0, self.grid.1)
            .neighbor_latency(5)
            .router_latency(10)
            .router_arity(4)
            .build()
    }
}

fn mapped(name: impl Into<String>, logical: Circuit, seed: u64) -> Benchmark {
    let config = LongRangeConfig {
        substitution_probability: 1.0,
        seed,
        immediate_corrections: false,
    };
    let logical_qubits = logical.num_qubits();
    let physical = map_to_physical(&logical, &config).expect("mapping is total");
    let width = physical.circuit.num_qubits();
    Benchmark {
        name: name.into(),
        physical: physical.circuit,
        grid: (width, 1),
        logical_qubits,
        mapping: Some(physical.stats),
    }
}

fn qec(name: impl Into<String>, config: &LogicalTConfig) -> Benchmark {
    let instance = logical_t(config);
    Benchmark {
        name: name.into(),
        logical_qubits: instance.active_qubits,
        grid: (instance.width, instance.height),
        physical: instance.circuit,
        mapping: None,
    }
}

/// Instance names of the paper-scale Figure 15 suite, in figure order.
pub const PAPER_SUITE: &[&str] = &[
    "adder_n577",
    "adder_n1153",
    "bv_n400",
    "bv_n1000",
    "logical_t_n432",
    "logical_t_n864",
    "qft_n30",
    "qft_n100",
    "qft_n200",
    "qft_n300",
    "w_state_n800",
    "w_state_n1000",
];

/// Instance names of the scaled-down twin suite (fast CI runs).
pub const QUICK_SUITE: &[&str] = &[
    "adder_n13",
    "bv_n16",
    "logical_t_d3",
    "logical_t_d3x2",
    "qft_n10",
    "w_state_n12",
];

/// Enumerates the suite's instance names without building any circuit —
/// the cheap half of grid expansion (workers build per scenario).
pub fn suite_names(scale: SuiteScale) -> &'static [&'static str] {
    match scale {
        SuiteScale::Paper => PAPER_SUITE,
        SuiteScale::Quick => QUICK_SUITE,
    }
}

/// Builds one suite instance by name (names are unique across both
/// scales, so no scale argument is needed). Returns `None` for unknown
/// names.
///
/// Instance-size notes (documented substitutions, see EXPERIMENTS.md):
/// `adder_n*` are VBE adders (3n+1 qubits: 577 → 192 bits, 1153 → 384);
/// `bv_n*` use sparse 16-bit secrets to keep full-suite regeneration
/// under minutes; `qft_n*` are approximate QFTs (degree 8, no final
/// swaps); `logical_t_n432` is one distance-8 lattice-surgery unit
/// (~470 active qubits) and `logical_t_n864` two units in parallel.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    let bench = match name {
        // Paper-scale instances.
        "adder_n577" => mapped(name, vbe_adder(192, 0x5a5a_5a5a_5a5a, 0x3c3c_3c3c_3c3c), 1),
        "adder_n1153" => mapped(name, vbe_adder(384, 0x5a5a_5a5a_5a5a, 0x3c3c_3c3c_3c3c), 2),
        "bv_n400" => mapped(
            name,
            bernstein_vazirani(400, &random_secret(399, 16, 40)),
            3,
        ),
        "bv_n1000" => mapped(
            name,
            bernstein_vazirani(1000, &random_secret(999, 16, 41)),
            4,
        ),
        "logical_t_n432" => qec(name, &LogicalTConfig::distance(8)),
        "logical_t_n864" => qec(name, &LogicalTConfig::distance(8).with_parallel_units(2)),
        "qft_n30" => mapped(name, qft(30, 8, false), 5),
        "qft_n100" => mapped(name, qft(100, 8, false), 6),
        "qft_n200" => mapped(name, qft(200, 8, false), 7),
        "qft_n300" => mapped(name, qft(300, 8, false), 8),
        "w_state_n800" => mapped(name, w_state(800), 9),
        "w_state_n1000" => mapped(name, w_state(1000), 10),
        // Quick twins.
        "adder_n13" => mapped(name, vbe_adder(4, 0b1010, 0b0110), 1),
        "bv_n16" => mapped(name, bernstein_vazirani(16, &random_secret(15, 4, 40)), 3),
        "logical_t_d3" => qec(name, &LogicalTConfig::distance(3)),
        "logical_t_d3x2" => qec(name, &LogicalTConfig::distance(3).with_parallel_units(2)),
        "qft_n10" => mapped(name, qft(10, 5, false), 5),
        "w_state_n12" => mapped(name, w_state(12), 9),
        _ => return None,
    };
    Some(bench)
}

/// Assembles the Figure 15 suite.
pub fn fig15_suite(scale: SuiteScale) -> Vec<Benchmark> {
    suite_names(scale)
        .iter()
        .map(|name| benchmark(name).expect("suite names are known"))
        .collect()
}

/// The Figure 16 circuit: `parallel` long-range CNOTs (Figure 14
/// gadgets with immediate corrections) executing simultaneously — the
/// simultaneous-feedback scenario whose serialization hurts the
/// lock-step baseline. Returns the physical circuit and the physical
/// sites of the data qubits carrying |ψ₁⟩/|ψ₂⟩ (the circuit's quantum
/// output, scored over the full schedule by the fidelity model).
pub fn simultaneous_long_range_cnots(parallel: usize, span: usize) -> (Circuit, Vec<usize>) {
    let seg = span + 1;
    let n = parallel * seg;
    let mut logical = Circuit::new(n, 1);
    let mut data_sites = Vec::new();
    for g in 0..parallel {
        let c = g * seg;
        let t = c + span;
        logical.gate(Gate::Ry(0.7), &[c]);
        logical.gate(Gate::Ry(1.1), &[t]);
        logical.cx(c, t);
        data_sites.push(2 * c);
        data_sites.push(2 * t);
    }
    let config = LongRangeConfig {
        substitution_probability: 1.0,
        seed: 16,
        immediate_corrections: true,
    };
    let physical = map_to_physical(&logical, &config).expect("mapping is total");
    (physical.circuit, data_sites)
}

/// A workload named by its parameters — the unit the sweep engine's
/// grid expansion enumerates. Building the circuit is deferred to
/// [`WorkloadSpec::build`], so expanding a grid over hundreds of
/// scenarios stays cheap and the expensive circuit generation runs on
/// the sweep workers.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A named Figure 15 suite instance (see [`suite_names`]).
    Suite {
        /// Instance name, e.g. `"qft_n10"`.
        name: String,
    },
    /// The Figure 16 simultaneous long-range CNOT circuit.
    LongRangeCnots {
        /// Number of simultaneous CNOT gadgets.
        parallel: usize,
        /// Logical control→target distance of each gadget.
        span: usize,
    },
}

impl WorkloadSpec {
    /// Spec for a named suite instance.
    pub fn suite(name: impl Into<String>) -> WorkloadSpec {
        WorkloadSpec::Suite { name: name.into() }
    }

    /// Specs for every instance of a suite scale.
    pub fn suite_specs(scale: SuiteScale) -> Vec<WorkloadSpec> {
        suite_names(scale)
            .iter()
            .map(|name| WorkloadSpec::suite(*name))
            .collect()
    }

    /// A short stable label for scenario identifiers.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Suite { name } => name.clone(),
            WorkloadSpec::LongRangeCnots { parallel, span } => {
                format!("lr_cnot_p{parallel}_s{span}")
            }
        }
    }

    /// Generates the physical circuit. Returns `None` for unknown
    /// suite names.
    pub fn build(&self) -> Option<BuiltWorkload> {
        match self {
            WorkloadSpec::Suite { name } => {
                let bench = benchmark(name)?;
                Some(BuiltWorkload {
                    label: bench.name,
                    circuit: bench.physical,
                    grid: bench.grid,
                    data_sites: Vec::new(),
                })
            }
            WorkloadSpec::LongRangeCnots { parallel, span } => {
                let (circuit, data_sites) = simultaneous_long_range_cnots(*parallel, *span);
                let width = circuit.num_qubits();
                Some(BuiltWorkload {
                    label: self.label(),
                    circuit,
                    grid: (width, 1),
                    data_sites,
                })
            }
        }
    }
}

/// A generated workload, ready for compilation: the physical circuit,
/// the controller grid it expects, and (optionally) the data-qubit
/// sites whose full-schedule exposure the fidelity model scores.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// Display label.
    pub label: String,
    /// The physical dynamic circuit.
    pub circuit: Circuit,
    /// Controller grid (width, height).
    pub grid: (usize, usize),
    /// Output data-qubit sites for full-span exposure scoring; empty
    /// means "score the simulator's own exposure ledger".
    pub data_sites: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_builds_and_fits_its_grids() {
        for bench in fig15_suite(SuiteScale::Quick) {
            assert_eq!(
                bench.physical.num_qubits(),
                bench.grid.0 * bench.grid.1,
                "{}: circuit must exactly cover its grid",
                bench.name
            );
            let topo = bench.topology();
            assert_eq!(topo.num_controllers(), bench.physical.num_qubits());
            assert!(topo.root_router().is_some());
        }
    }

    #[test]
    fn mapped_benchmarks_are_dynamic_circuits() {
        let suite = fig15_suite(SuiteScale::Quick);
        for bench in suite.iter().filter(|b| b.mapping.is_some()) {
            let stats = bench.mapping.unwrap();
            assert!(
                stats.substituted > 0,
                "{}: expected long-range substitutions",
                bench.name
            );
            assert!(
                bench.physical.feedback_count() > 0,
                "{}: dynamic circuits have feedback",
                bench.name
            );
        }
    }

    #[test]
    fn paper_suite_has_figure15_names() {
        // Building the full paper suite is slow; only check the names by
        // construction logic on the quick twin plus the two cheap paper
        // instances.
        let names: Vec<String> = fig15_suite(SuiteScale::Quick)
            .into_iter()
            .map(|b| b.name)
            .collect();
        assert!(names.iter().any(|n| n.starts_with("adder")));
        assert!(names.iter().any(|n| n.starts_with("bv")));
        assert!(names.iter().any(|n| n.starts_with("logical_t")));
        assert!(names.iter().any(|n| n.starts_with("qft")));
        assert!(names.iter().any(|n| n.starts_with("w_state")));
    }

    #[test]
    fn physical_sizes_follow_interleaved_layout() {
        let bench = &fig15_suite(SuiteScale::Quick)[0]; // adder_n13
        assert_eq!(bench.logical_qubits, 13);
        assert_eq!(bench.physical.num_qubits(), 25); // 2n − 1
    }

    #[test]
    fn suite_names_enumerate_without_building() {
        assert_eq!(suite_names(SuiteScale::Quick).len(), 6);
        assert_eq!(suite_names(SuiteScale::Paper).len(), 12);
        // Names are unique across both scales (benchmark() needs this).
        let mut all: Vec<&str> = PAPER_SUITE.iter().chain(QUICK_SUITE).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), PAPER_SUITE.len() + QUICK_SUITE.len());
        assert!(benchmark("no_such_instance").is_none());
    }

    #[test]
    fn workload_specs_build_their_circuits() {
        let specs = WorkloadSpec::suite_specs(SuiteScale::Quick);
        assert_eq!(specs.len(), QUICK_SUITE.len());
        let built = specs[0].build().expect("known instance");
        assert_eq!(built.label, "adder_n13");
        assert_eq!(built.circuit.num_qubits(), built.grid.0 * built.grid.1);
        assert!(built.data_sites.is_empty(), "suite scores the sim ledger");

        let lr = WorkloadSpec::LongRangeCnots {
            parallel: 2,
            span: 3,
        };
        assert_eq!(lr.label(), "lr_cnot_p2_s3");
        let built = lr.build().expect("total mapping");
        assert_eq!(built.data_sites.len(), 4, "two sites per gadget");
        assert!(built.circuit.feedback_count() > 0, "dynamic gadgets");

        assert!(WorkloadSpec::suite("nope").build().is_none());
    }
}
