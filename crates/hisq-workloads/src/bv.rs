//! Bernstein–Vazirani: the benchmark whose long CNOT fan-in onto a
//! single ancilla stresses long-range communication — the case where
//! Distributed-HISQ's distance-dependent latency loses to the baseline's
//! assumed-constant latency (§6.4.4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hisq_quantum::Circuit;

/// Builds an `n`-qubit Bernstein–Vazirani circuit (`n − 1` data qubits
/// plus the phase-kickback ancilla at index `n − 1`) for the given
/// secret bit string.
///
/// # Panics
///
/// Panics if `n < 2` or the secret has more than `n − 1` meaningful bits
/// set (`secret` is truncated to `n − 1` bits).
pub fn bernstein_vazirani(n: usize, secret: &[bool]) -> Circuit {
    assert!(n >= 2, "BV needs at least one data qubit plus the ancilla");
    assert!(secret.len() < n, "secret longer than the data register");
    let ancilla = n - 1;
    let mut circuit = Circuit::named(format!("bv_n{n}"), n, n - 1);

    circuit.x(ancilla);
    for q in 0..n {
        circuit.h(q);
    }
    for (i, &bit) in secret.iter().enumerate() {
        if bit {
            circuit.cx(i, ancilla);
        }
    }
    for q in 0..n - 1 {
        circuit.h(q);
    }
    for q in 0..n - 1 {
        circuit.measure(q, q);
    }
    circuit
}

/// Generates a random secret with exactly `ones` set bits over `len`
/// positions (seeded, reproducible).
pub fn random_secret(len: usize, ones: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut secret = vec![false; len];
    let mut remaining = ones.min(len);
    while remaining > 0 {
        let idx = rng.gen_range(0..len);
        if !secret[idx] {
            secret[idx] = true;
            remaining -= 1;
        }
    }
    secret
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_quantum::StateVector;

    #[test]
    fn recovers_the_secret_in_one_query() {
        let secret = [true, false, true, true, false];
        let circuit = bernstein_vazirani(6, &secret);
        let mut rng = StdRng::seed_from_u64(11);
        let out = StateVector::run(&circuit, &mut rng).unwrap();
        assert_eq!(&out.clbits[..5], &secret);
    }

    #[test]
    fn all_zero_secret_gives_all_zeros() {
        let circuit = bernstein_vazirani(4, &[false, false, false]);
        let mut rng = StdRng::seed_from_u64(12);
        let out = StateVector::run(&circuit, &mut rng).unwrap();
        assert!(out.clbits.iter().all(|&b| !b));
    }

    #[test]
    fn random_secret_has_exact_weight() {
        let secret = random_secret(399, 16, 7);
        assert_eq!(secret.len(), 399);
        assert_eq!(secret.iter().filter(|&&b| b).count(), 16);
        // Reproducible.
        assert_eq!(secret, random_secret(399, 16, 7));
        assert_ne!(secret, random_secret(399, 16, 8));
    }
}
