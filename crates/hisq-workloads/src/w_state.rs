//! Linear-depth W-state preparation.
//!
//! `|W_n⟩ = (|10…0⟩ + |01…0⟩ + … + |0…01⟩)/√n` via the standard
//! cascade: excite qubit 0, then repeatedly split the excitation with a
//! controlled-Ry (decomposed into CNOTs) and shift it with a CNOT. All
//! two-qubit gates act on neighbouring logical qubits, so the physical
//! mapping turns every one into a single-ancilla dynamic gadget — a
//! dense stream of small feedback operations.

use hisq_quantum::{Circuit, Gate};

/// Appends `CRy(theta)` with the standard 2-CNOT decomposition.
fn cry(circuit: &mut Circuit, theta: f64, control: usize, target: usize) {
    circuit.gate(Gate::Ry(theta / 2.0), &[target]);
    circuit.cx(control, target);
    circuit.gate(Gate::Ry(-theta / 2.0), &[target]);
    circuit.cx(control, target);
}

/// Builds the `n`-qubit W-state preparation circuit, measuring every
/// qubit at the end.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn w_state(n: usize) -> Circuit {
    assert!(n > 0, "W state needs at least one qubit");
    let mut circuit = Circuit::named(format!("w_state_n{n}"), n, n);
    circuit.x(0);
    for i in 0..n - 1 {
        // Split 1/(n − i) of the remaining excitation onto qubit i+1.
        let theta = 2.0 * (1.0 / ((n - i) as f64)).sqrt().acos();
        cry(&mut circuit, theta, i, i + 1);
        circuit.cx(i + 1, i);
    }
    for q in 0..n {
        circuit.measure(q, q);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_quantum::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w_state_without_measurement(n: usize) -> Circuit {
        let mut circuit = Circuit::new(n, 1);
        circuit.x(0);
        for i in 0..n - 1 {
            let theta = 2.0 * (1.0 / ((n - i) as f64)).sqrt().acos();
            cry(&mut circuit, theta, i, i + 1);
            circuit.cx(i + 1, i);
        }
        circuit
    }

    #[test]
    fn amplitudes_are_uniform_one_hot() {
        for n in 2..=6 {
            let circuit = w_state_without_measurement(n);
            let mut rng = StdRng::seed_from_u64(0);
            let out = StateVector::run(&circuit, &mut rng).unwrap();
            let expected = 1.0 / n as f64;
            for k in 0..(1usize << n) {
                let p = out.state.probability(k);
                if k.count_ones() == 1 {
                    assert!(
                        (p - expected).abs() < 1e-9,
                        "n={n}: P({k:0n$b}) = {p}, expected {expected}"
                    );
                } else {
                    assert!(p < 1e-9, "n={n}: non-one-hot state {k:b} has P={p}");
                }
            }
        }
    }

    #[test]
    fn measurement_yields_exactly_one_excitation() {
        let circuit = w_state(5);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let out = StateVector::run(&circuit, &mut rng).unwrap();
            let ones = out.clbits.iter().filter(|&&b| b).count();
            assert_eq!(ones, 1, "W-state measurement must find one excitation");
        }
    }

    #[test]
    fn all_two_qubit_gates_are_nearest_neighbour() {
        let circuit = w_state(10);
        for inst in circuit.instructions() {
            if let hisq_quantum::Operation::Gate { gate, qubits } = &inst.op {
                if gate.arity() == 2 {
                    assert_eq!(qubits[0].abs_diff(qubits[1]), 1);
                }
            }
        }
    }
}
