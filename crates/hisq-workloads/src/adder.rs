//! VBE ripple-carry adder (Vedral–Barenco–Ekert), the construction
//! behind QASMBench's large `adder_n*` instances (3n+1 qubits).
//!
//! Registers are interleaved per bit position for locality:
//! `c_i = 3i`, `a_i = 3i + 1`, `b_i = 3i + 2`, with the final carry at
//! `3n`. The adder computes `b ← a + b (mod 2^n)` with the carry-out in
//! qubit `3n`.

use hisq_quantum::Circuit;

use crate::toffoli::ccx;

fn c(i: usize) -> usize {
    3 * i
}

fn a(i: usize) -> usize {
    3 * i + 1
}

fn b(i: usize) -> usize {
    3 * i + 2
}

/// The CARRY block of the VBE adder.
fn carry(circuit: &mut Circuit, ci: usize, ai: usize, bi: usize, cnext: usize) {
    ccx(circuit, ai, bi, cnext);
    circuit.cx(ai, bi);
    ccx(circuit, ci, bi, cnext);
}

/// The inverse CARRY block.
fn carry_dg(circuit: &mut Circuit, ci: usize, ai: usize, bi: usize, cnext: usize) {
    ccx(circuit, ci, bi, cnext);
    circuit.cx(ai, bi);
    ccx(circuit, ai, bi, cnext);
}

/// The SUM block.
fn sum(circuit: &mut Circuit, ci: usize, ai: usize, bi: usize) {
    circuit.cx(ai, bi);
    circuit.cx(ci, bi);
}

/// Builds an `n`-bit VBE adder computing `b ← a + b`, with the inputs
/// preloaded via X gates from `a_value` and `b_value`.
///
/// Total qubits: `3n + 1`. The result appears in the `b` register
/// (qubits `3i + 2`) with the carry-out at `3n`.
///
/// # Panics
///
/// Panics if `n == 0` or an input value needs more than `n` bits.
pub fn vbe_adder(n: usize, a_value: u64, b_value: u64) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    assert!(
        n >= 64 || a_value < (1u64 << n),
        "a_value must fit {n} bits"
    );
    assert!(
        n >= 64 || b_value < (1u64 << n),
        "b_value must fit {n} bits"
    );
    let mut circuit = Circuit::named(format!("adder_n{}", 3 * n + 1), 3 * n + 1, n + 1);

    // Input bits beyond u64 width are zero.
    for i in 0..n.min(64) {
        if a_value >> i & 1 == 1 {
            circuit.x(a(i));
        }
        if b_value >> i & 1 == 1 {
            circuit.x(b(i));
        }
    }

    // Forward carry chain.
    for i in 0..n {
        let cnext = if i + 1 < n { c(i + 1) } else { 3 * n };
        carry(&mut circuit, c(i), a(i), b(i), cnext);
    }
    circuit.cx(a(n - 1), b(n - 1));
    sum(&mut circuit, c(n - 1), a(n - 1), b(n - 1));
    // Ripple back, producing sums.
    for i in (0..n - 1).rev() {
        carry_dg(&mut circuit, c(i), a(i), b(i), c(i + 1));
        sum(&mut circuit, c(i), a(i), b(i));
    }

    // Read out the sum and carry.
    for i in 0..n {
        circuit.measure(b(i), i);
    }
    circuit.measure(3 * n, n);
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_quantum::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_adder(n: usize, a_value: u64, b_value: u64) -> (u64, bool) {
        let circuit = vbe_adder(n, a_value, b_value);
        let mut rng = StdRng::seed_from_u64(3);
        let out = StateVector::run(&circuit, &mut rng).unwrap();
        let mut sum = 0u64;
        for i in 0..n {
            if out.clbits[i] {
                sum |= 1 << i;
            }
        }
        (sum, out.clbits[n])
    }

    #[test]
    fn two_bit_additions_exhaustive() {
        for a_value in 0..4u64 {
            for b_value in 0..4u64 {
                let (sum, carry) = run_adder(2, a_value, b_value);
                let total = a_value + b_value;
                assert_eq!(sum, total & 0b11, "{a_value} + {b_value}");
                assert_eq!(carry, total > 3, "{a_value} + {b_value} carry");
            }
        }
    }

    #[test]
    fn three_bit_addition_with_carry() {
        let (sum, carry) = run_adder(3, 5, 6);
        assert_eq!(sum, (5 + 6) & 0b111);
        assert!(carry);
    }

    #[test]
    fn qubit_count_matches_vbe_formula() {
        // QASMBench-style naming: adder_n577 = VBE with n = 192.
        let circuit = vbe_adder(192, 0, 0);
        assert_eq!(circuit.num_qubits(), 577);
        let circuit = vbe_adder(384, 0, 0);
        assert_eq!(circuit.num_qubits(), 1153);
    }
}
