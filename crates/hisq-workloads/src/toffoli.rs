//! Toffoli (CCX) decomposition into the {CX, H, T} gate set.
//!
//! HISQ circuits carry only one- and two-qubit operations, so the adder
//! benchmarks decompose their Toffolis with the standard 6-CNOT, 7-T
//! construction.

use hisq_quantum::{Circuit, Gate};

/// Appends a Toffoli with controls `a`, `b` and target `t` as the
/// standard {CX, H, T} decomposition.
///
/// # Panics
///
/// Panics if the qubits are out of range or not distinct (delegated to
/// [`Circuit`] validation).
pub fn ccx(circuit: &mut Circuit, a: usize, b: usize, t: usize) {
    assert!(a != b && b != t && a != t, "CCX qubits must be distinct");
    circuit.gate(Gate::H, &[t]);
    circuit.cx(b, t);
    circuit.gate(Gate::Tdg, &[t]);
    circuit.cx(a, t);
    circuit.gate(Gate::T, &[t]);
    circuit.cx(b, t);
    circuit.gate(Gate::Tdg, &[t]);
    circuit.cx(a, t);
    circuit.gate(Gate::T, &[b]);
    circuit.gate(Gate::T, &[t]);
    circuit.gate(Gate::H, &[t]);
    circuit.cx(a, b);
    circuit.gate(Gate::T, &[a]);
    circuit.gate(Gate::Tdg, &[b]);
    circuit.cx(a, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_quantum::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ccx_truth_table() {
        for input in 0..8u32 {
            let mut circuit = Circuit::new(3, 1);
            for q in 0..3 {
                if input & (1 << q) != 0 {
                    circuit.x(q);
                }
            }
            ccx(&mut circuit, 0, 1, 2);
            let mut rng = StdRng::seed_from_u64(1);
            let out = StateVector::run(&circuit, &mut rng).unwrap();
            let expected = if input & 0b11 == 0b11 {
                input ^ 0b100
            } else {
                input
            };
            assert!(
                (out.state.probability(expected as usize) - 1.0).abs() < 1e-9,
                "input {input:03b}: expected output {expected:03b}"
            );
        }
    }

    #[test]
    fn ccx_on_superposed_control() {
        // |+>|1>|0> → (|010> + |111>)/√2.
        let mut circuit = Circuit::new(3, 1);
        circuit.h(0);
        circuit.x(1);
        ccx(&mut circuit, 0, 1, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let out = StateVector::run(&circuit, &mut rng).unwrap();
        assert!((out.state.probability(0b010) - 0.5).abs() < 1e-9);
        assert!((out.state.probability(0b111) - 0.5).abs() < 1e-9);
    }
}
