//! Lattice-surgery logical-T benchmark (§6.4.2, Figure 2).
//!
//! Implements the feedback portion of a logical T gate via magic-state
//! lattice surgery, exactly at the paper's modelling level:
//!
//! - two unrotated surface-code patches (target + pre-prepared magic
//!   state) on a 2-D grid, with mesh-local stabilizer circuits;
//! - pre-merge syndrome-extraction rounds on both patches;
//! - `d` rounds of merged `Z⊗Z` seam measurements (the logical joint
//!   measurement of lattice surgery);
//! - a modelled **decoder latency** (wait instructions, following the
//!   paper's citation of a real-time hardware decoder) before the
//!   conditional branch;
//! - the **conditional logical-S sub-circuit** (Figure 2b): transversal
//!   S plus the multi-round sub-circuit duration, conditioned on the
//!   parity of the seam outcomes — the long feedback operation whose
//!   serialization hurts the lock-step baseline;
//! - magic-state distillation is skipped (pre-prepared state), as in the
//!   paper.
//!
//! `parallel_units > 1` lays several independent logical-T units side by
//! side: their feedbacks are mutually independent, the *simultaneous
//! feedback* scenario of §2.1.2.

use hisq_quantum::{Circuit, Condition, Gate};

/// Configuration of the logical-T benchmark generator.
#[derive(Debug, Clone)]
pub struct LogicalTConfig {
    /// Code distance `d`; each patch spans `(2d−1)×(2d−1)` grid sites.
    pub distance: usize,
    /// Syndrome-extraction rounds before the merge.
    pub pre_rounds: usize,
    /// Merged seam-measurement rounds (standard: `d`).
    pub merge_rounds: usize,
    /// Modelled decoder latency in nanoseconds (a real-time hardware
    /// decoder resolves in ~1 µs).
    pub decoder_latency_ns: u64,
    /// Duration of the conditional logical-S sub-circuit beyond its
    /// transversal layer, in nanoseconds.
    pub s_subcircuit_ns: u64,
    /// Number of independent logical-T units executing simultaneously.
    pub parallel_units: usize,
}

impl LogicalTConfig {
    /// A distance-`d` instance with paper-flavoured defaults.
    pub fn distance(d: usize) -> LogicalTConfig {
        LogicalTConfig {
            distance: d,
            pre_rounds: 2,
            merge_rounds: d,
            decoder_latency_ns: 1_000,
            s_subcircuit_ns: (d as u64) * 500,
            parallel_units: 1,
        }
    }

    /// Sets the number of parallel units (builder style).
    pub fn with_parallel_units(mut self, units: usize) -> LogicalTConfig {
        self.parallel_units = units.max(1);
        self
    }
}

/// A generated logical-T benchmark instance.
#[derive(Debug, Clone)]
pub struct LogicalTInstance {
    /// The dynamic circuit (grid-indexed qubits: `q = row·width + col`).
    pub circuit: Circuit,
    /// Grid width in controllers.
    pub width: usize,
    /// Grid height in controllers.
    pub height: usize,
    /// Number of grid sites actually carrying qubits.
    pub active_qubits: usize,
}

struct UnitLayout {
    /// Global column offset of the unit (always even, preserving site
    /// parities).
    offset: usize,
    /// Patch side length `2d−1`.
    side: usize,
    /// Total grid width.
    grid_width: usize,
}

impl UnitLayout {
    fn q(&self, row: usize, col: usize) -> usize {
        row * self.grid_width + self.offset + col
    }

    /// Columns of patch A: `0 .. side`; seam: `side`; patch M:
    /// `side+1 ..= 2·side`.
    fn seam_col(&self) -> usize {
        self.side
    }

    fn patch_m_base(&self) -> usize {
        self.side + 1
    }
}

/// Emits one syndrome-extraction round for the patch whose local origin
/// column is `base` (local coordinates: data at even `lr+lc`, X-type
/// ancilla at odd `lc`, Z-type at odd `lr`).
fn syndrome_round(
    circuit: &mut Circuit,
    layout: &UnitLayout,
    base: usize,
    next_clbit: &mut usize,
) -> Vec<usize> {
    let side = layout.side;
    let mut measured = Vec::new();
    let ancillas: Vec<(usize, usize, bool)> = (0..side)
        .flat_map(|lr| (0..side).map(move |lc| (lr, lc)))
        .filter(|&(lr, lc)| (lr + lc) % 2 == 1)
        .map(|(lr, lc)| (lr, lc, lc % 2 == 1)) // true = X-type
        .collect();

    for &(lr, lc, x_type) in &ancillas {
        if x_type {
            circuit.h(layout.q(lr, base + lc));
        }
    }
    for (dr, dc) in [(0i64, 1i64), (1, 0), (0, -1), (-1, 0)] {
        for &(lr, lc, x_type) in &ancillas {
            let nr = lr as i64 + dr;
            let nc = lc as i64 + dc;
            if nr < 0 || nc < 0 || nr >= side as i64 || nc >= side as i64 {
                continue;
            }
            let anc = layout.q(lr, base + lc);
            let data = layout.q(nr as usize, base + nc as usize);
            if x_type {
                circuit.cx(anc, data);
            } else {
                circuit.cx(data, anc);
            }
        }
    }
    for &(lr, lc, x_type) in &ancillas {
        let anc = layout.q(lr, base + lc);
        if x_type {
            circuit.h(anc);
        }
        let clbit = *next_clbit;
        *next_clbit += 1;
        circuit.measure(anc, clbit);
        circuit.reset(anc);
        measured.push(clbit);
    }
    measured
}

/// Emits one merged `Z⊗Z` seam round; returns the seam outcome clbits.
fn merge_round(circuit: &mut Circuit, layout: &UnitLayout, next_clbit: &mut usize) -> Vec<usize> {
    let seam = layout.seam_col();
    let mut bits = Vec::new();
    for row in (0..layout.side).step_by(2) {
        let anc = layout.q(row, seam);
        let left = layout.q(row, seam - 1);
        let right = layout.q(row, seam + 1);
        circuit.cx(left, anc);
        circuit.cx(right, anc);
        let clbit = *next_clbit;
        *next_clbit += 1;
        circuit.measure(anc, clbit);
        circuit.reset(anc);
        bits.push(clbit);
    }
    bits
}

/// Generates the logical-T benchmark.
///
/// # Panics
///
/// Panics if `distance < 2`.
pub fn logical_t(config: &LogicalTConfig) -> LogicalTInstance {
    let d = config.distance;
    assert!(d >= 2, "code distance must be at least 2");
    let side = 2 * d - 1;
    let unit_width = 2 * side + 1; // patch A + seam + patch M
    let unit_stride = unit_width + 1; // even gap keeps parities aligned
    let units = config.parallel_units.max(1);
    let grid_width = units * unit_width + (units - 1);
    let grid_height = side;

    // Upper bound on clbits: all rounds measure at most every site.
    let clbit_capacity = units * (config.pre_rounds + config.merge_rounds + 2) * unit_width * side;
    let mut circuit = Circuit::named(
        format!("logical_t_d{d}_x{units}"),
        grid_width * grid_height,
        clbit_capacity.max(1),
    );
    let mut next_clbit = 0usize;
    let mut active = 0usize;

    for unit in 0..units {
        let layout = UnitLayout {
            offset: unit * unit_stride,
            side,
            grid_width,
        };
        // Patch sites + seam ancillas.
        active += 2 * side * side + d;

        // Magic-state patch prepared in a non-trivial state (stand-in
        // for the pre-distilled |T⟩; distillation itself is skipped).
        for lr in 0..side {
            for lc in 0..side {
                if (lr + lc) % 2 == 0 {
                    circuit.h(layout.q(lr, layout.patch_m_base() + lc));
                }
            }
        }

        // Pre-merge stabilizer rounds on both patches.
        for _ in 0..config.pre_rounds {
            syndrome_round(&mut circuit, &layout, 0, &mut next_clbit);
            syndrome_round(
                &mut circuit,
                &layout,
                layout.patch_m_base(),
                &mut next_clbit,
            );
        }

        // Merge: d rounds of seam ZZ measurements.
        let mut seam_bits = Vec::new();
        for _ in 0..config.merge_rounds {
            seam_bits = merge_round(&mut circuit, &layout, &mut next_clbit);
        }

        // Decoder latency on every patch-A data qubit.
        for lr in 0..side {
            for lc in 0..side {
                if (lr + lc) % 2 == 0 {
                    circuit.delay(layout.q(lr, lc), config.decoder_latency_ns);
                }
            }
        }

        // Conditional logical S (Figure 2b): transversal S plus the
        // sub-circuit duration, conditioned on the seam parity.
        let condition = Condition::parity(seam_bits.clone(), true);
        for lr in 0..side {
            for lc in 0..side {
                if (lr + lc) % 2 == 0 {
                    let q = layout.q(lr, lc);
                    circuit.gate_if(Gate::S, &[q], condition.clone());
                    circuit
                        .push(hisq_quantum::Instruction {
                            op: hisq_quantum::Operation::Delay {
                                qubit: q,
                                duration_ns: config.s_subcircuit_ns,
                            },
                            condition: Some(condition.clone()),
                        })
                        .expect("valid delay");
                }
            }
        }

        // Post-merge stabilization round on the target patch.
        syndrome_round(&mut circuit, &layout, 0, &mut next_clbit);
    }

    LogicalTInstance {
        circuit,
        width: grid_width,
        height: grid_height,
        active_qubits: active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_quantum::Stabilizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instance_dimensions() {
        let inst = logical_t(&LogicalTConfig::distance(3));
        // side = 5, unit width = 11, height = 5.
        assert_eq!(inst.width, 11);
        assert_eq!(inst.height, 5);
        assert_eq!(inst.circuit.num_qubits(), 55);
        // 2 patches of 25 sites + 3 seam ancillas.
        assert_eq!(inst.active_qubits, 53);
    }

    #[test]
    fn parallel_units_double_the_footprint() {
        let inst = logical_t(&LogicalTConfig::distance(3).with_parallel_units(2));
        assert_eq!(inst.width, 23); // 11 + 1 gap + 11
        assert_eq!(inst.active_qubits, 106);
        // Two independent feedback groups.
        let single = logical_t(&LogicalTConfig::distance(3));
        assert_eq!(
            inst.circuit.feedback_count(),
            2 * single.circuit.feedback_count()
        );
    }

    #[test]
    fn circuit_is_clifford_and_mesh_local() {
        let inst = logical_t(&LogicalTConfig::distance(3));
        assert!(inst.circuit.is_clifford());
        for instruction in inst.circuit.instructions() {
            if let hisq_quantum::Operation::Gate { gate, qubits } = &instruction.op {
                if gate.arity() == 2 {
                    let (a, b) = (qubits[0], qubits[1]);
                    let (ar, ac) = (a / inst.width, a % inst.width);
                    let (br, bc) = (b / inst.width, b % inst.width);
                    assert_eq!(
                        ar.abs_diff(br) + ac.abs_diff(bc),
                        1,
                        "gate {gate:?} on non-adjacent grid sites {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn runs_on_the_stabilizer_backend() {
        let inst = logical_t(&LogicalTConfig::distance(2));
        let mut rng = StdRng::seed_from_u64(5);
        let register = Stabilizer::run(&inst.circuit, &mut rng);
        assert!(!register.is_empty());
    }

    #[test]
    fn feedback_structure_present() {
        let inst = logical_t(&LogicalTConfig::distance(3));
        assert!(inst.circuit.feedback_count() > 0);
        assert!(inst.circuit.measurement_count() > 0);
        // Conditional S on every data qubit of patch A: 13 data sites in
        // a 5×5 checkerboard, twice (gate + delay).
        assert_eq!(inst.circuit.feedback_count(), 26);
    }
}
