//! The (approximate) quantum Fourier transform.
//!
//! QASMBench's `qft_n*` kernels are the standard H + controlled-phase
//! cascade with final bit-reversal swaps. For the large instances we
//! follow standard practice and truncate controlled phases beyond a
//! configurable approximation degree (rotations below that threshold
//! are exponentially close to identity); the exact transform is
//! recovered with `degree >= n`.

use std::f64::consts::PI;

use hisq_quantum::{Circuit, Gate};

/// Builds an `n`-qubit QFT truncated at `degree` (controlled phases
/// `CP(π/2^k)` with `k >= degree` are dropped). `with_swaps` appends the
/// final bit-reversal swaps; large benchmark instances omit them (the
/// common implicit-reordering convention), since each long-range swap
/// costs three long-range CNOTs.
///
/// # Panics
///
/// Panics if `n == 0` or `degree == 0`.
pub fn qft(n: usize, degree: usize, with_swaps: bool) -> Circuit {
    assert!(n > 0, "QFT needs at least one qubit");
    assert!(degree > 0, "approximation degree must be at least 1");
    let mut circuit = Circuit::named(format!("qft_n{n}"), n, n);
    for i in (0..n).rev() {
        circuit.h(i);
        for k in 1..=i.min(degree.saturating_sub(1)) {
            let control = i - k;
            circuit.gate(Gate::Cphase(PI / (1 << k) as f64), &[control, i]);
        }
    }
    if with_swaps {
        for i in 0..n / 2 {
            circuit.gate(Gate::Swap, &[i, n - 1 - i]);
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_quantum::{StateVector, C64};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs the exact QFT on basis state |x⟩ and compares the amplitudes
    /// against the DFT definition `⟨k|QFT|x⟩ = ω^{xk}/√N`.
    fn check_against_dft(n: usize, x: usize) {
        let mut circuit = Circuit::new(n, 1);
        for q in 0..n {
            if x >> q & 1 == 1 {
                circuit.x(q);
            }
        }
        circuit.append(&qft(n, n, true)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let out = StateVector::run(&circuit, &mut rng).unwrap();
        let size = 1usize << n;
        for k in 0..size {
            let angle = 2.0 * PI * (x as f64) * (k as f64) / size as f64;
            let expected = C64::from_polar(angle).scale(1.0 / (size as f64).sqrt());
            let got = out.state.amplitude(k);
            assert!(
                got.approx_eq(expected, 1e-9),
                "n={n} x={x} k={k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn exact_qft_matches_dft_small() {
        for x in 0..8 {
            check_against_dft(3, x);
        }
        check_against_dft(4, 5);
        check_against_dft(4, 11);
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let circuit = qft(5, 5, true);
        let mut rng = StdRng::seed_from_u64(0);
        let out = StateVector::run(&circuit, &mut rng).unwrap();
        for k in 0..32 {
            assert!((out.state.probability(k) - 1.0 / 32.0).abs() < 1e-9);
        }
    }

    #[test]
    fn approximation_reduces_gate_count() {
        let exact = qft(20, 20, false);
        let approx = qft(20, 6, false);
        assert!(approx.two_qubit_gate_count() < exact.two_qubit_gate_count());
        // Approximate QFT on |0…0⟩ is still exactly uniform (all dropped
        // phases act trivially on |0⟩).
        let mut rng = StdRng::seed_from_u64(0);
        let small = qft(4, 2, true);
        let out = StateVector::run(&small, &mut rng).unwrap();
        for k in 0..16 {
            assert!((out.state.probability(k) - 1.0 / 16.0).abs() < 1e-9);
        }
    }
}
