//! # hisq-workloads — the paper's benchmark suite (§6.4.2)
//!
//! Generators for every workload in the Figure 15 evaluation:
//!
//! | Benchmark | Generator | Structure |
//! |---|---|---|
//! | `adder_n577`, `adder_n1153` | [`adder::vbe_adder`] | VBE ripple-carry adder (3n+1 qubits) |
//! | `bv_n400`, `bv_n1000` | [`bv::bernstein_vazirani`] | BV with long CNOTs onto one ancilla |
//! | `qft_n30..n300` | [`qft::qft`] | (approximate) quantum Fourier transform |
//! | `w_state_n800`, `w_state_n1000` | [`w_state::w_state`] | linear W-state preparation cascade |
//! | `logical_t_n432`, `logical_t_n864` | [`logical_t::logical_t`] | lattice-surgery logical T with conditional logical S |
//!
//! The first four produce *logical* circuits that the
//! [`hisq_compiler::longrange`] pass rewrites into dynamic circuits on
//! the interleaved data/ancilla layout (this is the paper's "converted
//! several static circuits from QASMBench to dynamic circuits"
//! transformation). The QEC benchmark is generated directly on a 2-D
//! grid with mesh-local stabilizer circuits.
//!
//! [`suite::fig15_suite`] assembles the exact instance list of Figure
//! 15; [`suite::suite_names`] enumerates it without building circuits,
//! and [`suite::WorkloadSpec`] is the deferred-build handle the sweep
//! engine expands parameter grids over.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adder;
pub mod bv;
pub mod json;
pub mod logical_t;
pub mod qft;
pub mod suite;
pub mod toffoli;
pub mod w_state;

pub use adder::vbe_adder;
pub use bv::bernstein_vazirani;
pub use logical_t::{logical_t, LogicalTConfig, LogicalTInstance};
pub use qft::qft;
pub use suite::{
    benchmark, fig15_suite, simultaneous_long_range_cnots, suite_names, Benchmark, BuiltWorkload,
    SuiteScale, WorkloadSpec, PAPER_SUITE, QUICK_SUITE,
};
pub use w_state::w_state;
