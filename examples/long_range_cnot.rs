//! The paper's Figure 14 workload end to end: a long-range CNOT as a
//! constant-depth dynamic circuit, compiled to per-controller HISQ
//! binaries under both execution schemes, simulated, and verified on a
//! real quantum backend.
//!
//! Run with: `cargo run --example long_range_cnot`

use std::error::Error;

use distributed_hisq::compiler::{
    compile_bisp, compile_lockstep, map_to_physical, BispOptions, LockstepOptions, LongRangeConfig,
};
use distributed_hisq::net::TopologyBuilder;
use distributed_hisq::quantum::Circuit;
use distributed_hisq::runner::build_system;
use distributed_hisq::sim::StabilizerBackend;

fn main() -> Result<(), Box<dyn Error>> {
    // Logical circuit: CNOT between qubits five sites apart, control
    // prepared in |1> so the target must flip.
    let mut logical = Circuit::new(6, 2);
    logical.x(0);
    logical.cx(0, 5);
    logical.measure(0, 0);
    logical.measure(5, 1);

    // Rewrite onto the interleaved data/ancilla layout with the dynamic
    // gate-teleportation gadget.
    let physical = map_to_physical(&logical, &LongRangeConfig::default())?;
    println!(
        "logical 6 qubits -> physical {} qubits; {} dynamic substitution(s), {} feedback op(s)",
        physical.circuit.num_qubits(),
        physical.stats.substituted,
        physical.circuit.feedback_count()
    );

    let topology = TopologyBuilder::linear(physical.circuit.num_qubits()).build();

    // --- Distributed-HISQ (BISP) --------------------------------------
    let bisp = compile_bisp(&physical.circuit, &topology, &BispOptions::default())?;
    let mut system = build_system(&bisp, Some(&topology))?;
    system.set_backend(StabilizerBackend::new(physical.circuit.num_qubits(), 42));
    let report = system.run()?;
    assert!(report.all_halted);

    let t0 = distributed_hisq::isa::Reg::parse("t0").unwrap();
    let control_bit = system.controller(0).unwrap().reg(t0);
    let target_bit = system
        .controller((physical.circuit.num_qubits() - 1) as u16)
        .unwrap()
        .reg(t0);
    println!(
        "BISP:     control measured {control_bit}, target measured {target_bit}  \
         (runtime {} ns, {} syncs)",
        report.makespan_ns, report.total_syncs
    );
    assert_eq!(control_bit, 1);
    assert_eq!(target_bit, 1, "CNOT from |1> must flip the target");

    // --- Lock-step baseline --------------------------------------------
    let lockstep = compile_lockstep(&physical.circuit, &LockstepOptions::default())?;
    let mut baseline = build_system(&lockstep, None)?;
    baseline.set_backend(StabilizerBackend::new(physical.circuit.num_qubits(), 42));
    let base_report = baseline.run()?;
    assert!(base_report.all_halted);
    println!(
        "baseline: runtime {} ns ({}x Distributed-HISQ)",
        base_report.makespan_ns,
        base_report.makespan_ns as f64 / report.makespan_ns as f64
    );

    // Peek at one generated controller program.
    println!("\ngenerated HISQ program for the control qubit's controller:");
    println!("{}", bisp.sources[&0]);
    Ok(())
}
