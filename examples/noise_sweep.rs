//! Noise-aware scoring end to end: sweep the per-gate error rate over
//! both execution schemes on a small simultaneous long-range CNOT
//! workload and watch the BISP fidelity advantage compress as gate
//! error starts to dominate the idle (scheduling) term.
//!
//! This is a miniature of the `fig_noise` bench binary: the noise model
//! rides `SystemParams::noise` as an ordinary sweep axis, the backend
//! switches to the leakage-aware random backend, and the
//! `noise_infidelity` metric is scored analytically from the committed
//! operation counts plus the exposure ledger.
//!
//! Run with: `cargo run --example noise_sweep`

use std::error::Error;

use distributed_hisq::compiler::Scheme;
use distributed_hisq::quantum::NoiseModel;
use distributed_hisq::runner::{run_sweep, Scenario, SystemParams};
use distributed_hisq::sim::SweepGrid;
use distributed_hisq::workloads::WorkloadSpec;

fn main() -> Result<(), Box<dyn Error>> {
    // Two long-range CNOT gadgets of span 3 — 15 controllers, quick.
    let workload = WorkloadSpec::LongRangeCnots {
        parallel: 2,
        span: 3,
    };

    // The error-rate family: two-qubit gates and readout 10x worse
    // than single-qubit gates, a little leakage, fixed idle error.
    let model = |p: f64| {
        NoiseModel::default()
            .with_gate_errors(p, 10.0 * p)
            .with_meas_error(10.0 * p)
            .with_idle_error(1e-6)
            .with_leak(p)
    };

    let scenarios = SweepGrid::new(Scenario::new(workload, Scheme::Bisp).with_seed(16))
        .axis([1e-5, 1e-4, 1e-3, 1e-2], |s, &p| {
            s.params = SystemParams {
                noise: model(p),
                ..SystemParams::default()
            }
        })
        .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
            s.scheme = scheme
        })
        .into_points();

    let report = run_sweep(&scenarios, 2)?;

    println!("p1q        scheme     noise infidelity");
    println!("---------------------------------------");
    for (scenario, record) in scenarios.iter().zip(report.records()) {
        let scheme = match scenario.scheme {
            Scheme::Bisp => "bisp",
            Scheme::Lockstep => "lockstep",
        };
        let infid = record
            .value("noise_infidelity")
            .expect("noisy scenarios carry the metric");
        println!(
            "{:<10.0e} {:<10} {infid:.6}",
            scenario.params.noise.p_gate_1q, scheme
        );
    }

    // The headline: the baseline/BISP ratio compresses toward 1 as the
    // (scheme-independent) gate-error term dominates.
    let ratio = |i: usize| {
        let bisp = report.records()[2 * i].value("noise_infidelity").unwrap();
        let lock = report.records()[2 * i + 1]
            .value("noise_infidelity")
            .unwrap();
        lock / bisp
    };
    println!(
        "\nreduction ratio: {:.2}x at p1q = 1e-5, {:.2}x at p1q = 1e-2",
        ratio(0),
        ratio(3)
    );
    Ok(())
}
