//! The Figure 11 calibration workflow: drive the simulated
//! superconducting qubit through real HISQ programs and extract its
//! parameters, exactly like bringing up a new device.
//!
//! Run with: `cargo run --release --example calibration`

use distributed_hisq::analog::experiments::{
    rabi_experiment, spectroscopy_experiment, t1_experiment, RabiConfig, SpectroscopyConfig,
    T1Config,
};

fn main() {
    println!("== Step 1: find the qubit (frequency sweep) ==");
    let spec = spectroscopy_experiment(&SpectroscopyConfig {
        shots: 150,
        ..SpectroscopyConfig::default()
    });
    println!(
        "   resonance at {:.4} GHz (device truth: 4.6200 GHz)",
        spec.fitted_frequency_ghz
    );

    println!("== Step 2: calibrate the X gate (amplitude sweep) ==");
    let rabi = rabi_experiment(&RabiConfig {
        shots: 150,
        ..RabiConfig::default()
    });
    println!(
        "   pi-pulse amplitude {:.3} of DAC full scale (model optimum 0.500)",
        rabi.pi_amplitude
    );

    println!("== Step 3: characterize coherence (delay sweep) ==");
    let t1 = t1_experiment(&T1Config {
        shots: 300,
        ..T1Config::default()
    });
    println!(
        "   T1 = {:.1} us (paper: 9.9 us; mature reference stack: {:.1} us)",
        t1.fitted_t1_us, t1.reference_t1_us
    );
    for (delay, p) in t1.delay_us.iter().zip(&t1.p_excited).step_by(5) {
        let bar: String = std::iter::repeat_n('#', (p * 40.0).round() as usize).collect();
        println!("   {delay:5.1} us | {bar:<40} {p:.3}");
    }

    println!("\nAll three parameters recovered through the HISQ ISA: the same");
    println!("cw/wait instructions controlled phase, frequency, amplitude, and timing.");
}
