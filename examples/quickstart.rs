//! Quickstart: assemble two HISQ programs by hand, describe a
//! two-controller Distributed-HISQ system as a declarative
//! `SystemSpec`, and watch BISP align their codeword commits at cycle
//! level.
//!
//! Run with: `cargo run --example quickstart`

use distributed_hisq::core::NodeConfig;
use distributed_hisq::isa::Assembler;
use distributed_hisq::sim::SystemSpec;

fn main() {
    // Two controllers with different-length deterministic prologues.
    // Each books a synchronization (`sync <peer>`), pads the calibrated
    // 6-cycle countdown, and fires a codeword — BISP guarantees both
    // `cw` commits land on the same 4 ns cycle.
    let controller_a = "
        waiti 40            # deterministic work: 160 ns
        sync 1              # book with controller 1
        waiti 6             # cover the link countdown
        cw.i.i 0, 1         # the synchronized trigger
        stop
    ";
    let controller_b = "
        waiti 90            # a much longer prologue
        sync 0
        waiti 6
        cw.i.i 0, 1
        stop
    ";

    let asm = Assembler::new();
    let program_a = asm.assemble(controller_a).expect("valid assembly");
    let program_b = asm.assemble(controller_b).expect("valid assembly");

    println!("Controller 0 program:\n{program_a}");

    // Describe the deployment as data, then validate and build it
    // once: the spec is the single construction path for a system.
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0).with_neighbor(1, 6),
        program_a.insts().to_vec(),
    );
    spec.controller(
        NodeConfig::new(1).with_neighbor(0, 6),
        program_b.insts().to_vec(),
    );

    let mut system = spec.build().expect("valid system description");
    let report = system.run().expect("simulation runs");
    assert!(report.all_halted, "both controllers reach `stop`");

    let telf = system.telf();
    let a = telf.commits_of(0)[0];
    let b = telf.commits_of(1)[0];
    println!(
        "controller 0 committed at cycle {} ({} ns)",
        a.cycle,
        a.time_ns()
    );
    println!(
        "controller 1 committed at cycle {} ({} ns)",
        b.cycle,
        b.time_ns()
    );
    assert_eq!(a.cycle, b.cycle, "BISP aligns the commits");
    println!("\nzero-cycle synchronization: both triggers at the same 4 ns slot,");
    println!(
        "with total timer stall {} cycles across the system.",
        report.total_stall_cycles
    );
}
