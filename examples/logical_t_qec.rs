//! The QEC workload: a lattice-surgery logical T gate with its
//! conditional logical-S feedback, compiled for both schemes — the
//! *simultaneous feedback* scenario where Distributed-HISQ shines.
//!
//! Run with: `cargo run --release --example logical_t_qec`

use std::error::Error;

use distributed_hisq::compiler::{compile_bisp, compile_lockstep, BispOptions, LockstepOptions};
use distributed_hisq::net::TopologyBuilder;
use distributed_hisq::runner::build_system;
use distributed_hisq::sim::RandomBackend;
use distributed_hisq::workloads::{logical_t, LogicalTConfig};

fn run(units: usize) -> Result<(u64, u64), Box<dyn Error>> {
    let instance = logical_t(&LogicalTConfig::distance(3).with_parallel_units(units));
    let topology = TopologyBuilder::grid(instance.width, instance.height).build();

    let bisp = compile_bisp(&instance.circuit, &topology, &BispOptions::default())?;
    let mut system = build_system(&bisp, Some(&topology))?;
    system.set_backend(RandomBackend::new(9, 0.5));
    let bisp_report = system.run()?;
    assert!(bisp_report.all_halted);

    let lockstep = compile_lockstep(&instance.circuit, &LockstepOptions::default())?;
    let mut baseline = build_system(&lockstep, None)?;
    baseline.set_backend(RandomBackend::new(9, 0.5));
    let base_report = baseline.run()?;
    assert!(base_report.all_halted);

    Ok((bisp_report.makespan_ns, base_report.makespan_ns))
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("Lattice-surgery logical T (distance 3): syndrome rounds, merged");
    println!("ZZ measurement, modelled decoder latency, conditional logical S.\n");

    let (bisp1, base1) = run(1)?;
    println!("1 logical T:  Distributed-HISQ {bisp1:>7} ns | baseline {base1:>7} ns");

    let (bisp2, base2) = run(2)?;
    println!("2 parallel T: Distributed-HISQ {bisp2:>7} ns | baseline {base2:>7} ns");

    println!();
    println!(
        "Distributed-HISQ executes the second unit's feedback concurrently \
         (+{} ns for the extra unit);",
        bisp2.saturating_sub(bisp1)
    );
    println!(
        "the lock-step baseline serializes it through the shared program flow \
         (+{} ns).",
        base2.saturating_sub(base1)
    );
    assert!(
        bisp2.saturating_sub(bisp1) < base2.saturating_sub(base1),
        "simultaneous feedback must be cheaper under BISP"
    );
    Ok(())
}
