#!/usr/bin/env bash
# Committed-baseline gate for the paper-figure binaries.
#
# Each figure binary that commits its quick report to the repo root
# (BENCH_<bin>.json) is regenerated with the shared
# `--quick --threads 2 --json` flags and byte-compared, so a baseline
# can never drift silently. Regenerated copies of mismatching reports
# are left under $DIFF_DIR (default target/baseline-diff/) for CI to
# upload as an artifact.
#
# After the figure baselines, the wall-clock regression gates run:
# `event_engine --gate` re-measures the simulator hot loop and fails if
# any row of the committed BENCH_event_engine.json regressed by more
# than 15% ns/event, and `fig_sweep_throughput --gate` re-times the
# full cached sweep grid and fails if any thread-count row's
# scenarios/sec fell more than 15% below the committed
# BENCH_sweep_throughput.json. Both reports carry wall time, so they
# are gated — never byte-compared like the deterministic figure
# baselines above.
#
# Usage: ci/check_baselines.sh           (uses cargo run --release)
set -euo pipefail

cd "$(dirname "$0")/.."

DIFF_DIR="${DIFF_DIR:-target/baseline-diff}"

BASELINED_BINS=(fig_contention fig_hetero fig_load fig_noise fig_scale)

rm -rf "$DIFF_DIR"
mkdir -p "$DIFF_DIR"

status=0
for bin in "${BASELINED_BINS[@]}"; do
    golden="BENCH_$bin.json"
    out="$DIFF_DIR/$bin.json"
    cargo run --release -p hisq-bench --bin "$bin" -- --quick --threads 2 --json \
        > "$out"
    if cmp -s "$out" "$golden"; then
        rm "$out"
        echo "ok   $bin ($golden)"
    else
        echo "FAIL $bin: regenerated report differs from $golden" >&2
        echo "     regenerated copy kept at $out" >&2
        echo "     to accept the new baseline: cp $out $golden" >&2
        status=1
    fi
done

rmdir "$DIFF_DIR" 2> /dev/null || true

# The ns/event regression gate (reads the committed baseline, never
# rewrites it).
if cargo bench -p hisq-bench --bench event_engine -- --gate; then
    echo "ok   event_engine (ns/event gate)"
else
    echo "FAIL event_engine: ns/event regressed past the committed gate" >&2
    status=1
fi

# The sweep-throughput regression gate: full-sweep scenarios/sec with
# the shared compile cache, gated against BENCH_sweep_throughput.json
# (reads the committed baseline, never rewrites it).
if cargo run --release -p hisq-bench --bin fig_sweep_throughput -- --gate; then
    echo "ok   fig_sweep_throughput (scenarios/sec gate)"
else
    echo "FAIL fig_sweep_throughput: sweep throughput regressed past the committed gate" >&2
    status=1
fi

exit "$status"
