#!/usr/bin/env bash
# Golden-corpus replay gate.
#
# Replays every scenario file in scenarios/ through `hisq run` and
# byte-compares the output against the committed report in
# scenarios/reports/ — once on 1 thread and once on 4, so the gate
# also proves the parallel sweep engine is deterministic on the whole
# corpus. One file additionally runs with `--repetitions` to pin the
# seed++ expansion semantics, and the load_saturation report is
# grepped for the job-engine metric surface (latency percentiles) so
# the multi-tenant path can't silently degrade to a plain replay.
#
# Mismatching outputs are left under $DIFF_DIR (default
# target/scenario-diff/) for CI to upload as an artifact.
#
# Usage: ci/check_scenarios.sh            (builds hisq if needed)
#        HISQ=path/to/hisq ci/check_scenarios.sh
set -euo pipefail

cd "$(dirname "$0")/.."

HISQ="${HISQ:-target/release/hisq}"
DIFF_DIR="${DIFF_DIR:-target/scenario-diff}"

if [ ! -x "$HISQ" ]; then
    cargo build --release --bin hisq
fi

rm -rf "$DIFF_DIR"
mkdir -p "$DIFF_DIR"

status=0

for file in scenarios/*.json; do
    stem="$(basename "$file" .json)"
    golden="scenarios/reports/$stem.json"
    if [ ! -f "$golden" ]; then
        echo "FAIL $stem: no committed report at $golden" >&2
        status=1
        continue
    fi
    for threads in 1 4; do
        out="$DIFF_DIR/$stem.t$threads.json"
        "$HISQ" run "$file" --threads "$threads" --json > "$out" 2> /dev/null
        if cmp -s "$out" "$golden"; then
            rm "$out"
        else
            echo "FAIL $stem: --threads $threads output differs from $golden" >&2
            echo "     regenerated copy kept at $out" >&2
            status=1
        fi
    done
    echo "ok   $stem"
done

# --repetitions N must expand every grid point N times with
# consecutive seeds: 4 grid points x 2 repetitions = 8 scenarios.
reps_out="$DIFF_DIR/bisp_vs_lockstep.reps2.json"
"$HISQ" run scenarios/bisp_vs_lockstep.json --repetitions 2 --json \
    > "$reps_out" 2> /dev/null
if grep -q '^{"scenarios":8,' "$reps_out" \
    && grep -q '"w_state_n12/bisp/seed3/t300"' "$reps_out"; then
    rm "$reps_out"
    echo "ok   bisp_vs_lockstep --repetitions 2 (8 scenarios, seed++)"
else
    echo "FAIL bisp_vs_lockstep: --repetitions 2 did not expand to 8 scenarios" >&2
    echo "     output kept at $reps_out" >&2
    status=1
fi

# The load corpus entry must carry the job-engine metric surface: a
# scenario with a `load` block reports latency percentiles and a
# rejection count, not just a makespan.
load_golden="scenarios/reports/load_saturation.json"
if grep -q '"latency_p99_ns"' "$load_golden" \
    && grep -q '"jobs_rejected"' "$load_golden"; then
    echo "ok   load_saturation carries job-engine metrics"
else
    echo "FAIL load_saturation: $load_golden lacks job-engine metrics" >&2
    status=1
fi

rmdir "$DIFF_DIR" 2> /dev/null || true
if [ "$status" -ne 0 ]; then
    echo "golden corpus FAILED; regenerate with:" >&2
    echo "  for f in scenarios/*.json; do" >&2
    echo "    $HISQ run \"\$f\" --json > scenarios/reports/\$(basename \"\$f\")" >&2
    echo "  done" >&2
fi
exit "$status"
