//! Versioned scenario files: the product surface of the reproduction.
//!
//! A scenario file is a JSON document describing a whole experiment —
//! a base [`Scenario`], sweep axes expanded into the cartesian grid
//! (exactly what the in-process [`SweepGrid`](hisq_sim::SweepGrid)
//! builders do), and a repetition count — that the `hisq run` binary
//! executes through the deterministic sweep engine. Committed scenario
//! files plus their committed reports form the golden replay corpus in
//! `scenarios/`, compared byte-for-byte in CI.
//!
//! # Format
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "quick-bisp-vs-lockstep",
//!   "description": "Both schemes on one quick workload, two seeds.",
//!   "repetitions": 1,
//!   "base": {"workload": {"suite": "w_state_n12"}, "scheme": "bisp"},
//!   "axes": [
//!     {"axis": "scheme", "values": ["bisp", "lockstep"]},
//!     {"axis": "seed", "values": [1, 2]}
//!   ]
//! }
//! ```
//!
//! - `schema_version` is **required** and must equal
//!   [`SCHEMA_VERSION`]; decoding any other version fails loudly so a
//!   stale tool never silently misreads a newer file.
//! - Unknown fields are rejected everywhere, with dotted-path errors
//!   (`base.params.noise: unknown field ...`) — a typo in a
//!   hand-edited file is a parse error, not a silently ignored knob.
//! - `axes` (optional) expand in file order into the cartesian
//!   product, later axes varying fastest. Axis values overwrite the
//!   corresponding base field, including whole `surgery` op lists — a
//!   structural transform is a grid axis like any other.
//! - `repetitions` (optional, default 1) runs every grid point `N`
//!   times with consecutive seeds (`seed`, `seed+1`, …), golem-des
//!   style; `hisq run --repetitions N` overrides it.

use hisq_compiler::Scheme;
use hisq_json::{Json, JsonError, ObjReader};
use hisq_net::LinkModel;
use hisq_quantum::NoiseModel;
use hisq_workloads::WorkloadSpec;

use crate::load::LoadSpec;
use crate::runner::{LinkOverride, NoiseOverride, Scenario, SurgeryOp};

/// The scenario-file schema version this build reads and writes.
///
/// Bump when the scenario grammar changes incompatibly; decoding a
/// file with any other version fails with an error naming both
/// versions.
pub const SCHEMA_VERSION: u64 = 1;

/// One sweep axis of a scenario file: which base field varies, and the
/// values it takes. Axes expand in file order into the cartesian
/// product of their values (later axes vary fastest).
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// Vary the execution scheme.
    Scheme(Vec<Scheme>),
    /// Vary the backend seed.
    Seed(Vec<u64>),
    /// Vary the scored coherence time (µs).
    T1Us(Vec<f64>),
    /// Vary the per-run shot count (each shot after the first opens
    /// with a region sync under BISP).
    Shots(Vec<u32>),
    /// Vary the workload.
    Workload(Vec<WorkloadSpec>),
    /// Vary the classical link contention model.
    LinkModel(Vec<LinkModel>),
    /// Vary the quantum noise model.
    Noise(Vec<NoiseModel>),
    /// Vary the per-edge link-model override list (each value
    /// *replaces* the base list, so `[]` is the uniform fabric).
    LinkOverrides(Vec<Vec<LinkOverride>>),
    /// Vary the per-qubit noise override list (each value *replaces*
    /// the base list, so `[]` is the uniform device).
    NoiseOverrides(Vec<Vec<NoiseOverride>>),
    /// Vary fabric-aware compilation on/off (the `fig_hetero`
    /// aware-vs-oblivious comparison axis).
    FabricAware(Vec<bool>),
    /// Vary the spec-surgery op list (each value *replaces* the base
    /// list, so `[]` is the unmodified machine).
    Surgery(Vec<Vec<SurgeryOp>>),
    /// Vary the multi-tenant load block (each value *replaces* the
    /// base block — the `fig_load` offered-load × partition-count
    /// axes).
    Load(Vec<LoadSpec>),
}

impl Axis {
    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::Scheme(v) => v.len(),
            Axis::Seed(v) => v.len(),
            Axis::T1Us(v) => v.len(),
            Axis::Shots(v) => v.len(),
            Axis::Workload(v) => v.len(),
            Axis::LinkModel(v) => v.len(),
            Axis::Noise(v) => v.len(),
            Axis::LinkOverrides(v) => v.len(),
            Axis::NoiseOverrides(v) => v.len(),
            Axis::FabricAware(v) => v.len(),
            Axis::Surgery(v) => v.len(),
            Axis::Load(v) => v.len(),
        }
    }

    /// `true` when the axis carries no values (rejected at parse time,
    /// so an expanded file never silently produces zero scenarios).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The JSON name of the varied field.
    fn axis_name(&self) -> &'static str {
        match self {
            Axis::Scheme(_) => "scheme",
            Axis::Seed(_) => "seed",
            Axis::T1Us(_) => "t1_us",
            Axis::Shots(_) => "shots",
            Axis::Workload(_) => "workload",
            Axis::LinkModel(_) => "link_model",
            Axis::Noise(_) => "noise",
            Axis::LinkOverrides(_) => "link_overrides",
            Axis::NoiseOverrides(_) => "noise_overrides",
            Axis::FabricAware(_) => "fabric_aware",
            Axis::Surgery(_) => "surgery",
            Axis::Load(_) => "load",
        }
    }

    /// Applies value `index` of this axis to `scenario`.
    fn apply(&self, scenario: &mut Scenario, index: usize) {
        match self {
            Axis::Scheme(v) => scenario.scheme = v[index],
            Axis::Seed(v) => scenario.seed = v[index],
            Axis::T1Us(v) => scenario.t1_us = v[index],
            Axis::Shots(v) => scenario.shots = v[index],
            Axis::Workload(v) => scenario.workload = v[index].clone(),
            Axis::LinkModel(v) => scenario.params.link_model = v[index],
            Axis::Noise(v) => scenario.params.noise = v[index],
            Axis::LinkOverrides(v) => scenario.params.link_overrides = v[index].clone(),
            Axis::NoiseOverrides(v) => scenario.params.noise_overrides = v[index].clone(),
            Axis::FabricAware(v) => scenario.params.fabric_aware = v[index],
            Axis::Surgery(v) => scenario.surgery = v[index].clone(),
            Axis::Load(v) => scenario.load = Some(v[index].clone()),
        }
    }

    /// Serializes the axis as `{"axis": name, "values": [...]}`.
    pub fn to_json(&self) -> Json {
        let values = match self {
            Axis::Scheme(v) => v
                .iter()
                .map(|s| {
                    Json::str(match s {
                        Scheme::Bisp => "bisp",
                        Scheme::Lockstep => "lockstep",
                    })
                })
                .collect(),
            Axis::Seed(v) => v.iter().map(|&s| s.into()).collect(),
            Axis::T1Us(v) => v.iter().map(|&t| Json::float(t)).collect(),
            Axis::Shots(v) => v.iter().map(|&s| u64::from(s).into()).collect(),
            Axis::Workload(v) => v.iter().map(WorkloadSpec::to_json).collect(),
            Axis::LinkModel(v) => v.iter().map(LinkModel::to_json).collect(),
            Axis::Noise(v) => v.iter().map(NoiseModel::to_json).collect(),
            Axis::LinkOverrides(v) => v
                .iter()
                .map(|overs| Json::Array(overs.iter().map(LinkOverride::to_json).collect()))
                .collect(),
            Axis::NoiseOverrides(v) => v
                .iter()
                .map(|overs| Json::Array(overs.iter().map(NoiseOverride::to_json).collect()))
                .collect(),
            Axis::FabricAware(v) => v.iter().map(|&b| b.into()).collect(),
            Axis::Surgery(v) => v
                .iter()
                .map(|ops| Json::Array(ops.iter().map(SurgeryOp::to_json).collect()))
                .collect(),
            Axis::Load(v) => v.iter().map(LoadSpec::to_json).collect(),
        };
        Json::Object(vec![
            ("axis".into(), Json::str(self.axis_name())),
            ("values".into(), Json::Array(values)),
        ])
    }

    /// Parses an axis serialized by [`Axis::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for an unknown axis name, an
    /// empty value list, or malformed values.
    pub fn from_json(value: &Json, path: &str) -> Result<Axis, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let name_path = obj.field_path("axis");
        let name = obj.required("axis")?.as_str(&name_path)?.to_owned();
        let values_path = obj.field_path("values");
        let values = obj.required("values")?.as_array(&values_path)?;
        let at = |i: usize| format!("{values_path}[{i}]");
        let axis = match name.as_str() {
            "scheme" => Axis::Scheme(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match v.as_str(&at(i))? {
                        "bisp" => Ok(Scheme::Bisp),
                        "lockstep" => Ok(Scheme::Lockstep),
                        other => Err(JsonError::decode(
                            at(i),
                            format!(
                                "unknown scheme \"{other}\" (expected \"bisp\" or \"lockstep\")"
                            ),
                        )),
                    })
                    .collect::<Result<_, _>>()?,
            ),
            "seed" => Axis::Seed(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v.as_u64(&at(i)))
                    .collect::<Result<_, _>>()?,
            ),
            "t1_us" => Axis::T1Us(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v.as_f64(&at(i)))
                    .collect::<Result<_, _>>()?,
            ),
            "shots" => Axis::Shots(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let shots = v.as_u32(&at(i))?;
                        if shots == 0 {
                            return Err(JsonError::decode(at(i), "shots must be at least 1"));
                        }
                        Ok(shots)
                    })
                    .collect::<Result<_, _>>()?,
            ),
            "workload" => Axis::Workload(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| WorkloadSpec::from_json(v, &at(i)))
                    .collect::<Result<_, _>>()?,
            ),
            "link_model" => Axis::LinkModel(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| LinkModel::from_json(v, &at(i)))
                    .collect::<Result<_, _>>()?,
            ),
            "noise" => Axis::Noise(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| NoiseModel::from_json(v, &at(i)))
                    .collect::<Result<_, _>>()?,
            ),
            "link_overrides" => Axis::LinkOverrides(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        v.as_array(&at(i))?
                            .iter()
                            .enumerate()
                            .map(|(j, over)| {
                                LinkOverride::from_json(over, &format!("{}[{j}]", at(i)))
                            })
                            .collect::<Result<Vec<LinkOverride>, _>>()
                    })
                    .collect::<Result<_, _>>()?,
            ),
            "noise_overrides" => Axis::NoiseOverrides(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        v.as_array(&at(i))?
                            .iter()
                            .enumerate()
                            .map(|(j, over)| {
                                NoiseOverride::from_json(over, &format!("{}[{j}]", at(i)))
                            })
                            .collect::<Result<Vec<NoiseOverride>, _>>()
                    })
                    .collect::<Result<_, _>>()?,
            ),
            "fabric_aware" => Axis::FabricAware(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v.as_bool(&at(i)))
                    .collect::<Result<_, _>>()?,
            ),
            "surgery" => Axis::Surgery(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        v.as_array(&at(i))?
                            .iter()
                            .enumerate()
                            .map(|(j, op)| SurgeryOp::from_json(op, &format!("{}[{j}]", at(i))))
                            .collect::<Result<Vec<SurgeryOp>, _>>()
                    })
                    .collect::<Result<_, _>>()?,
            ),
            "load" => Axis::Load(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| LoadSpec::from_json(v, &at(i)))
                    .collect::<Result<_, _>>()?,
            ),
            other => {
                return Err(JsonError::decode(
                    name_path,
                    format!(
                        "unknown axis \"{other}\" (expected \"scheme\", \"seed\", \"t1_us\", \
                         \"shots\", \"workload\", \"link_model\", \"noise\", \
                         \"link_overrides\", \"noise_overrides\", \"fabric_aware\", \
                         \"surgery\", or \"load\")"
                    ),
                ))
            }
        };
        obj.reject_unknown()?;
        if axis.is_empty() {
            return Err(JsonError::decode(values_path, "axis has no values"));
        }
        Ok(axis)
    }
}

/// A parsed scenario file: name, base scenario, sweep axes, and the
/// repetition count. See the [module docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFile {
    /// Display name (also the suggested report file stem).
    pub name: String,
    /// Free-form description (optional, empty when absent).
    pub description: String,
    /// Times each grid point runs, with consecutive seeds. Must be ≥ 1.
    pub repetitions: u64,
    /// The base scenario every grid point starts from.
    pub base: Scenario,
    /// Sweep axes, expanded in order (later axes vary fastest).
    pub axes: Vec<Axis>,
}

impl ScenarioFile {
    /// A single-point scenario file around `base`.
    pub fn new(name: impl Into<String>, base: Scenario) -> ScenarioFile {
        ScenarioFile {
            name: name.into(),
            description: String::new(),
            repetitions: 1,
            base,
            axes: Vec::new(),
        }
    }

    /// Parses a scenario-file document from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with line/column information for
    /// malformed JSON, or a dotted-path error for schema violations
    /// (wrong `schema_version`, unknown fields, empty axes, …).
    pub fn parse(text: &str) -> Result<ScenarioFile, JsonError> {
        ScenarioFile::from_json(&Json::parse(text)?, "scenario")
    }

    /// Parses a scenario file serialized by [`ScenarioFile::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path`; see [`ScenarioFile::parse`].
    pub fn from_json(value: &Json, path: &str) -> Result<ScenarioFile, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let version_path = obj.field_path("schema_version");
        let version = obj.required("schema_version")?.as_u64(&version_path)?;
        if version != SCHEMA_VERSION {
            return Err(JsonError::decode(
                version_path,
                format!(
                    "unsupported schema_version {version} (this build reads version \
                     {SCHEMA_VERSION})"
                ),
            ));
        }
        let name = obj
            .required("name")?
            .as_str(&obj.field_path("name"))?
            .to_owned();
        if name.is_empty() {
            return Err(JsonError::decode(obj.field_path("name"), "name is empty"));
        }
        let description = match obj.optional("description") {
            Some(v) => v.as_str(&obj.field_path("description"))?.to_owned(),
            None => String::new(),
        };
        let repetitions = match obj.optional("repetitions") {
            Some(v) => {
                let n = v.as_u64(&obj.field_path("repetitions"))?;
                if n == 0 {
                    return Err(JsonError::decode(
                        obj.field_path("repetitions"),
                        "repetitions must be at least 1",
                    ));
                }
                n
            }
            None => 1,
        };
        let base = Scenario::from_json(obj.required("base")?, &obj.field_path("base"))?;
        let mut axes = Vec::new();
        if let Some(v) = obj.optional("axes") {
            let axes_path = obj.field_path("axes");
            for (i, entry) in v.as_array(&axes_path)?.iter().enumerate() {
                axes.push(Axis::from_json(entry, &format!("{axes_path}[{i}]"))?);
            }
        }
        obj.reject_unknown()?;
        Ok(ScenarioFile {
            name,
            description,
            repetitions,
            base,
            axes,
        })
    }

    /// Serializes the file (omitting an empty description, a
    /// repetition count of 1, and an empty axis list).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version".into(), SCHEMA_VERSION.into()),
            ("name".into(), Json::str(self.name.clone())),
        ];
        if !self.description.is_empty() {
            fields.push(("description".into(), Json::str(self.description.clone())));
        }
        if self.repetitions != 1 {
            fields.push(("repetitions".into(), self.repetitions.into()));
        }
        fields.push(("base".into(), self.base.to_json()));
        if !self.axes.is_empty() {
            fields.push((
                "axes".into(),
                Json::Array(self.axes.iter().map(Axis::to_json).collect()),
            ));
        }
        Json::Object(fields)
    }

    /// Number of grid points (before repetitions).
    pub fn grid_len(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Expands the file into the concrete scenario list the sweep
    /// engine runs: the cartesian product of the axes over the base
    /// scenario (later axes varying fastest), each point repeated
    /// `repetitions` times with consecutive seeds (`seed`, `seed+1`,
    /// …). Pass `repetitions_override` to replace the file's count
    /// (the `--repetitions` flag).
    pub fn expand(&self, repetitions_override: Option<u64>) -> Vec<Scenario> {
        let repetitions = repetitions_override.unwrap_or(self.repetitions).max(1);
        let mut points = vec![self.base.clone()];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(points.len() * axis.len());
            for point in &points {
                for index in 0..axis.len() {
                    let mut varied = point.clone();
                    axis.apply(&mut varied, index);
                    next.push(varied);
                }
            }
            points = next;
        }
        let mut scenarios = Vec::with_capacity(points.len() * repetitions as usize);
        for point in points {
            for rep in 0..repetitions {
                let mut repeated = point.clone();
                repeated.seed = point.seed.wrapping_add(rep);
                scenarios.push(repeated);
            }
        }
        scenarios
    }

    /// The `--quick` expansion (`hisq run --quick`, mirroring the
    /// `fig*` binaries' flag): one repetition, every scenario clamped
    /// to a single shot, and grid points that collapse onto the same
    /// id (e.g. along a `shots` axis) deduplicated in grid order — a
    /// smoke pass over the file's structure at a fraction of the work.
    pub fn expand_quick(&self) -> Vec<Scenario> {
        let mut scenarios = self.expand(Some(1));
        for scenario in &mut scenarios {
            scenario.shots = 1;
        }
        let mut seen = std::collections::HashSet::new();
        scenarios.retain(|s| seen.insert(s.id()));
        scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_file() -> ScenarioFile {
        ScenarioFile::parse(
            r#"{
                "schema_version": 1,
                "name": "quick",
                "base": {"workload": {"suite": "w_state_n12"}, "scheme": "bisp"},
                "axes": [
                    {"axis": "scheme", "values": ["bisp", "lockstep"]},
                    {"axis": "seed", "values": [1, 2]}
                ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn expansion_is_cartesian_with_later_axes_fastest() {
        let file = quick_file();
        assert_eq!(file.grid_len(), 4);
        let scenarios = file.expand(None);
        assert_eq!(scenarios.len(), 4);
        let ids: Vec<String> = scenarios.iter().map(Scenario::id).collect();
        assert_eq!(
            ids,
            [
                "w_state_n12/bisp/seed1/t300",
                "w_state_n12/bisp/seed2/t300",
                "w_state_n12/lockstep/seed1/t300",
                "w_state_n12/lockstep/seed2/t300",
            ]
        );
    }

    #[test]
    fn repetitions_expand_with_consecutive_seeds() {
        let mut file = quick_file();
        file.axes.truncate(1); // scheme only
        file.repetitions = 3;
        let scenarios = file.expand(None);
        assert_eq!(scenarios.len(), 6);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, [1, 2, 3, 1, 2, 3]);
        // The flag overrides the file.
        assert_eq!(file.expand(Some(1)).len(), 2);
    }

    #[test]
    fn quick_expansion_clamps_shots_and_reps_and_dedups() {
        let mut file = quick_file();
        file.repetitions = 5;
        file.axes.push(Axis::Shots(vec![1, 8]));
        // Full expansion: 2 schemes × 2 seeds × 2 shots × 5 reps.
        assert_eq!(file.expand(None).len(), 40);
        let quick = file.expand_quick();
        // Quick: one rep, shots clamped to 1, and the collapsed shots
        // axis deduplicated — back to the 2×2 core grid.
        assert_eq!(quick.len(), 4);
        assert!(quick.iter().all(|s| s.shots == 1));
        let ids: Vec<String> = quick.iter().map(Scenario::id).collect();
        let mut unique = ids.clone();
        unique.dedup();
        assert_eq!(ids, unique, "quick ids stay unique");
    }

    #[test]
    fn file_round_trips_through_json() {
        let mut file = quick_file();
        file.description = "round-trip exemplar".into();
        file.repetitions = 2;
        file.axes.push(Axis::Surgery(vec![
            Vec::new(),
            vec![crate::runner::SurgeryOp::DropRouterLevel],
        ]));
        let text = file.to_json().to_string_pretty();
        assert_eq!(ScenarioFile::parse(&text).unwrap(), file);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let err = ScenarioFile::parse(
            r#"{"schema_version": 2, "name": "x",
                "base": {"workload": {"suite": "w_state_n12"}, "scheme": "bisp"}}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unsupported schema_version 2"),
            "{err}"
        );
    }

    #[test]
    fn schema_violations_name_their_paths() {
        for (text, needle) in [
            (r#"{"name": "x"}"#, "missing field `schema_version`"),
            (
                r#"{"schema_version": 1, "name": "x",
                    "base": {"workload": {"suite": "a"}, "scheme": "bisp"},
                    "axes": [{"axis": "seed", "values": []}]}"#,
                "axis has no values",
            ),
            (
                r#"{"schema_version": 1, "name": "x",
                    "base": {"workload": {"suite": "a"}, "scheme": "bisp"},
                    "axes": [{"axis": "temperature", "values": [1]}]}"#,
                "unknown axis \"temperature\"",
            ),
            (
                r#"{"schema_version": 1, "name": "x", "repetitions": 0,
                    "base": {"workload": {"suite": "a"}, "scheme": "bisp"}}"#,
                "repetitions must be at least 1",
            ),
            (
                r#"{"schema_version": 1, "name": "x",
                    "base": {"workload": {"suite": "a"}, "scheme": "bisp",
                             "params": {"noize": {}}}}"#,
                "scenario.base.params: unknown field `noize`",
            ),
        ] {
            let err = ScenarioFile::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}\n-> {err}");
        }
    }
}
