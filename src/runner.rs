//! The experiment harness: from a scenario description to aggregated
//! sweep results, end to end.
//!
//! This module is the facade over the whole reproduction pipeline —
//! **compile → place → simulate → aggregate**:
//!
//! 1. [`Scenario`] names one experiment point: a workload
//!    ([`WorkloadSpec`]), an execution scheme ([`Scheme`]), the system
//!    parameters ([`SystemParams`]), a backend seed, and the coherence
//!    time the fidelity model scores against.
//! 2. [`run_scenario`] executes one point: builds the circuit, the
//!    topology, compiles under the scheme, simulates, and distills the
//!    paper's metrics into a [`SweepRecord`].
//! 3. [`run_sweep`] fans a whole scenario list out over a
//!    [`hisq_sim::SweepRunner`] worker pool and aggregates the records
//!    into a deterministic [`SweepReport`] — the substrate behind every
//!    `fig*`/`table1` binary's `--threads N --json` path.
//!
//! The lower-level pieces ([`build_system`], [`run_compiled`]) stay
//! public for callers that bring their own compiled programs.
//!
//! # Example
//!
//! ```
//! use distributed_hisq::runner::{run_sweep, Scenario};
//! use distributed_hisq::compiler::Scheme;
//! use distributed_hisq::workloads::WorkloadSpec;
//! use distributed_hisq::sim::SweepGrid;
//!
//! // Both schemes on one quick workload, two seeds: a 1×2×2 grid.
//! let scenarios = SweepGrid::new(Scenario::new(
//!         WorkloadSpec::suite("w_state_n12"),
//!         Scheme::Bisp,
//!     ))
//!     .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| s.scheme = scheme)
//!     .axis([1u64, 2], |s, &seed| s.seed = seed)
//!     .into_points();
//!
//! let report = run_sweep(&scenarios, 2);
//! assert_eq!(report.records().len(), 4);
//! assert_eq!(report.summary()["all_halted"].sum, 4.0, "every run halts");
//! ```

use hisq_compiler::{
    compile_bisp, compile_lockstep, Binding, BindingAction, BispOptions, CompiledSystem,
    LockstepOptions, Scheme, PORT_READOUT,
};
use hisq_core::NodeConfig;
use hisq_isa::CYCLE_NS;
use hisq_net::{Topology, TopologyBuilder};
use hisq_quantum::{CoherenceParams, ExposureLedger};
use hisq_sim::{
    BackendSpec, Hub, QuantumAction, QuantumBackend, SimError, SimReport, SweepRecord, SweepReport,
    SweepRunner, System, SystemSpec,
};
use hisq_workloads::WorkloadSpec;

/// Describes a compiled program as a declarative [`SystemSpec`].
///
/// For [`Scheme::Bisp`] the topology that the circuit was compiled
/// against must be supplied (controllers, mesh links, and the router
/// tree are described from it). For [`Scheme::Lockstep`] a star
/// system is described: bare controllers plus the broadcast hub.
///
/// # Panics
///
/// Panics if a BISP program is described without its topology.
pub fn system_spec(compiled: &CompiledSystem, topology: Option<&Topology>) -> SystemSpec {
    let mut spec = match compiled.scheme {
        Scheme::Bisp => {
            let topology = topology.expect("BISP systems need their compilation topology");
            let programs = compiled
                .programs
                .iter()
                .map(|(&addr, program)| (addr, program.insts().to_vec()))
                .collect();
            SystemSpec::from_topology(topology, programs)
        }
        Scheme::Lockstep => {
            let hub = compiled.hub.expect("lock-step systems carry a hub spec");
            let config = hisq_sim::SimConfig {
                default_classical_latency: hub.up_latency,
                ..hisq_sim::SimConfig::default()
            };
            let mut spec = SystemSpec::new();
            spec.config(config);
            spec.hub(
                hub.addr,
                Hub {
                    subscribers: compiled.programs.keys().copied().collect(),
                    down_latency: hub.down_latency,
                },
            );
            for (&addr, program) in &compiled.programs {
                spec.controller(
                    NodeConfig::new(addr).with_pipeline_headroom(32),
                    program.insts().to_vec(),
                );
            }
            spec
        }
    };
    apply_bindings(
        &mut spec,
        &compiled.bindings,
        compiled.durations.measurement,
    );
    spec
}

/// Builds a ready-to-run [`System`] from a compiled program — the
/// [`system_spec`] description, validated and built.
///
/// # Errors
///
/// Returns [`SimError`] if node addresses collide (a compiler bug).
///
/// # Panics
///
/// Panics if a BISP program is built without its topology.
pub fn build_system(
    compiled: &CompiledSystem,
    topology: Option<&Topology>,
) -> Result<System, SimError> {
    system_spec(compiled, topology).build()
}

/// Installs codeword bindings into a system description.
fn apply_bindings(spec: &mut SystemSpec, bindings: &[Binding], meas_latency: u64) {
    for binding in bindings {
        match &binding.action {
            BindingAction::Gate { gate, qubits } => {
                spec.bind(
                    binding.node,
                    binding.port,
                    binding.codeword,
                    QuantumAction::Gate {
                        gate: *gate,
                        qubits: qubits.clone(),
                    },
                );
            }
            BindingAction::Measure { qubit } => {
                debug_assert_eq!(binding.port, PORT_READOUT);
                let _ = meas_latency; // result latency comes from SimConfig durations
                spec.bind(
                    binding.node,
                    binding.port,
                    binding.codeword,
                    QuantumAction::Measure { qubit: *qubit },
                );
            }
            BindingAction::Reset { qubit } => {
                spec.bind(
                    binding.node,
                    binding.port,
                    binding.codeword,
                    QuantumAction::Reset { qubit: *qubit },
                );
            }
            BindingAction::Pulse => {}
        }
    }
}

/// The outcome of one compiled-and-simulated run: the simulator report
/// plus the paper's derived metrics.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Engine report (makespan, stalls, instruction counts, …).
    pub report: SimReport,
    /// End-to-end program runtime in nanoseconds.
    pub runtime_ns: u64,
    /// Circuit infidelity under the given coherence parameters
    /// (Figure 16's metric).
    pub infidelity: f64,
}

/// Compiles-in-place convenience: builds, runs, and summarizes a system.
///
/// # Errors
///
/// Propagates [`SimError`] from system construction or the run.
pub fn run_compiled(
    compiled: &CompiledSystem,
    topology: Option<&Topology>,
    backend: impl QuantumBackend + 'static,
    coherence: CoherenceParams,
) -> Result<RunMetrics, SimError> {
    let mut system = build_system(compiled, topology)?;
    system.set_backend(backend);
    let report = system.run()?;
    let runtime_ns = report.makespan_cycles * CYCLE_NS;
    let infidelity = system.exposure().infidelity(coherence);
    Ok(RunMetrics {
        report,
        runtime_ns,
        infidelity,
    })
}

/// System-level parameters of a scenario: the mesh/tree link latencies
/// the BISP topology is built with, and the star latencies of the
/// lock-step baseline's broadcast hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemParams {
    /// Mesh-edge latency between neighbouring controllers (cycles).
    pub neighbor_latency: u64,
    /// Tree-edge latency between routers (cycles).
    pub router_latency: u64,
    /// Router fan-in of the synchronization tree.
    pub router_arity: usize,
    /// Baseline controller → hub latency (cycles).
    pub star_up_latency: u64,
    /// Baseline hub → controller broadcast latency (cycles).
    pub star_down_latency: u64,
}

impl Default for SystemParams {
    /// The paper's Figure 15 defaults: 5-cycle mesh edges, 10-cycle
    /// tree edges, arity 4, 100 ns (25-cycle) star legs.
    fn default() -> SystemParams {
        SystemParams {
            neighbor_latency: 5,
            router_latency: 10,
            router_arity: 4,
            star_up_latency: 25,
            star_down_latency: 25,
        }
    }
}

/// One experiment point of a sweep: workload × scheme × system
/// parameters × seed × coherence time.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The workload to compile and run.
    pub workload: WorkloadSpec,
    /// Execution scheme (Distributed-HISQ BISP or lock-step baseline).
    pub scheme: Scheme,
    /// Seed of the random measurement backend.
    pub seed: u64,
    /// Relaxation time T1 = T2 (µs) the infidelity metric is scored at.
    pub t1_us: f64,
    /// Link latencies and baseline star parameters.
    pub params: SystemParams,
}

impl Scenario {
    /// A scenario with the paper-default seed (1), coherence (300 µs),
    /// and system parameters.
    pub fn new(workload: WorkloadSpec, scheme: Scheme) -> Scenario {
        Scenario {
            workload,
            scheme,
            seed: 1,
            t1_us: 300.0,
            params: SystemParams::default(),
        }
    }

    /// Replaces the backend seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Replaces the scored coherence time (builder style).
    #[must_use]
    pub fn with_t1_us(mut self, t1_us: f64) -> Scenario {
        self.t1_us = t1_us;
        self
    }

    /// Replaces the system parameters (builder style).
    #[must_use]
    pub fn with_params(mut self, params: SystemParams) -> Scenario {
        self.params = params;
        self
    }

    /// Stable identifier used as the sweep-record id (and for pairing
    /// scheme twins in the figure harnesses).
    pub fn id(&self) -> String {
        let scheme = match self.scheme {
            Scheme::Bisp => "bisp",
            Scheme::Lockstep => "lockstep",
        };
        format!(
            "{}/{}/seed{}/t{}",
            self.workload.label(),
            scheme,
            self.seed,
            self.t1_us
        )
    }
}

/// Executes one scenario end to end — build circuit, build topology,
/// compile, simulate, score — and distills the paper's metrics.
///
/// The record carries: `makespan_cycles` / `makespan_ns` (end-to-end
/// runtime), `instructions`, `syncs`, `stall_cycles` (synchronization
/// overhead), `messages` (engine events processed), `infidelity` at the
/// scenario's coherence time, and the `all_halted` flag.
///
/// # Panics
///
/// Panics if the workload name is unknown, compilation fails, or node
/// addresses collide — all programmer errors in the scenario
/// description, reported with the scenario id for context.
pub fn run_scenario(scenario: &Scenario) -> SweepRecord {
    let id = scenario.id();
    let built = scenario
        .workload
        .build()
        .unwrap_or_else(|| panic!("{id}: unknown workload"));
    let p = scenario.params;
    let topology = TopologyBuilder::grid(built.grid.0, built.grid.1)
        .neighbor_latency(p.neighbor_latency)
        .router_latency(p.router_latency)
        .router_arity(p.router_arity)
        .build();
    let (compiled, topology) = match scenario.scheme {
        Scheme::Bisp => {
            let compiled = compile_bisp(&built.circuit, &topology, &BispOptions::default())
                .unwrap_or_else(|e| panic!("{id}: BISP compile failed: {e}"));
            (compiled, Some(&topology))
        }
        Scheme::Lockstep => {
            let options = LockstepOptions {
                star_up_latency: p.star_up_latency,
                star_down_latency: p.star_down_latency,
                ..LockstepOptions::default()
            };
            let compiled = compile_lockstep(&built.circuit, &options)
                .unwrap_or_else(|e| panic!("{id}: lock-step compile failed: {e}"));
            (compiled, None)
        }
    };
    let mut spec = system_spec(&compiled, topology);
    spec.backend(BackendSpec::Random {
        seed: scenario.seed,
        p_one: 0.5,
    });
    let mut system = spec
        .build()
        .unwrap_or_else(|e| panic!("{id}: build failed: {e}"));
    let report = system
        .run()
        .unwrap_or_else(|e| panic!("{id}: run failed: {e}"));

    let coherence = CoherenceParams::uniform(scenario.t1_us);
    let infidelity = if built.data_sites.is_empty() {
        system.exposure().infidelity(coherence)
    } else {
        // Output data qubits stay coherent from circuit start until the
        // whole dynamic circuit completes (the Figure 16 scoring).
        let mut ledger = ExposureLedger::new();
        for &q in &built.data_sites {
            ledger.record_span(q, 0, report.makespan_ns);
        }
        ledger.infidelity(coherence)
    };

    SweepRecord::new(id)
        .with("makespan_cycles", report.makespan_cycles)
        .with("makespan_ns", report.makespan_ns)
        .with("instructions", report.total_instructions)
        .with("syncs", report.total_syncs)
        .with("stall_cycles", report.total_stall_cycles)
        .with("messages", report.events_processed)
        .with("infidelity", infidelity)
        .with("all_halted", report.all_halted)
}

/// Runs a batch of scenarios on `threads` workers and aggregates their
/// records (in scenario order) into a deterministic report.
///
/// The output is byte-identical for any thread count: records land at
/// their scenario's index and statistics fold in that order. See the
/// module docs for an end-to-end example.
pub fn run_sweep(scenarios: &[Scenario], threads: usize) -> SweepReport {
    SweepRunner::new(threads).run(scenarios, |_, scenario| run_scenario(scenario))
}
