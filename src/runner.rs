//! The experiment harness: from a scenario description to aggregated
//! sweep results, end to end.
//!
//! This module is the facade over the whole reproduction pipeline —
//! **compile → place → simulate → aggregate**:
//!
//! 1. [`Scenario`] names one experiment point: a workload
//!    ([`WorkloadSpec`]), an execution scheme ([`Scheme`]), the system
//!    parameters ([`SystemParams`]), a backend seed, and the coherence
//!    time the fidelity model scores against.
//! 2. [`run_scenario`] executes one point: builds the circuit, the
//!    topology, compiles under the scheme, simulates, and distills the
//!    paper's metrics into a [`SweepRecord`].
//! 3. [`run_sweep`] fans a whole scenario list out over a
//!    [`hisq_sim::SweepRunner`] worker pool and aggregates the records
//!    into a deterministic [`SweepReport`] — the substrate behind every
//!    `fig*`/`table1` binary's `--threads N --json` path.
//!
//! The lower-level pieces ([`build_system`], [`run_compiled`]) stay
//! public for callers that bring their own compiled programs.
//!
//! # Example
//!
//! ```
//! use distributed_hisq::runner::{run_sweep, Scenario};
//! use distributed_hisq::compiler::Scheme;
//! use distributed_hisq::workloads::WorkloadSpec;
//! use distributed_hisq::sim::SweepGrid;
//!
//! // Both schemes on one quick workload, two seeds: a 1×2×2 grid.
//! let scenarios = SweepGrid::new(Scenario::new(
//!         WorkloadSpec::suite("w_state_n12"),
//!         Scheme::Bisp,
//!     ))
//!     .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| s.scheme = scheme)
//!     .axis([1u64, 2], |s, &seed| s.seed = seed)
//!     .into_points();
//!
//! let report = run_sweep(&scenarios, 2).unwrap();
//! assert_eq!(report.records().len(), 4);
//! assert_eq!(report.summary()["all_halted"].sum, 4.0, "every run halts");
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::load::LoadSpec;
use hisq_compiler::fabric::{apply_placement, plan_placement, FabricCosts};
use hisq_compiler::{
    compile_bisp, compile_lockstep, Binding, BindingAction, BispOptions, CompiledSystem,
    LockstepOptions, Scheme, PORT_READOUT,
};
use hisq_core::{NodeAddr, NodeConfig};
use hisq_isa::CYCLE_NS;
use hisq_json::{Json, JsonError, ObjReader};
use hisq_net::json::{edge_override_from_json, edge_override_to_json};
use hisq_net::{FabricMap, LinkModel, Topology, TopologyBuilder};
use hisq_quantum::{CoherenceParams, ExposureLedger, NoiseMap, NoiseModel};
use hisq_sim::{
    BackendSpec, Hub, QuantumAction, QuantumBackend, SimError, SimReport, SweepRecord, SweepReport,
    SweepRunner, System, SystemSpec,
};
use hisq_workloads::WorkloadSpec;

/// The measured outcome of one executed scenario (a flat metric bag
/// keyed by the scenario's stable id — see [`run_scenario`] for the
/// metric names).
pub type ScenarioReport = SweepRecord;

/// A failure anywhere along the facade pipeline — describing, building,
/// compiling, or simulating a scenario. Every variant is a
/// malformed-but-constructible input (an unknown workload name, a
/// program map colliding with infrastructure addresses, a mis-rooted
/// tree): the facade reports them structurally instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunnerError {
    /// The scenario named a workload the suite does not know.
    UnknownWorkload {
        /// Scenario id (for sweep-level attribution).
        id: String,
    },
    /// Compilation of the workload's circuit failed.
    Compile {
        /// Scenario id.
        id: String,
        /// Compiler diagnostic.
        message: String,
    },
    /// A BISP system was described without its compilation topology.
    MissingTopology {
        /// Scenario id, or `""` outside a scenario context.
        id: String,
    },
    /// A lock-step system was described from a compile result that
    /// carries no hub specification.
    MissingHub {
        /// Scenario id, or `""` outside a scenario context.
        id: String,
    },
    /// Building or running the simulator failed (the scenario id is
    /// empty when the error came from the lower-level
    /// [`build_system`]/[`run_compiled`] entry points).
    Sim {
        /// Scenario id, or `""` outside a scenario context.
        id: String,
        /// The simulator error.
        source: SimError,
    },
    /// A [`SurgeryOp`] could not be applied to the scenario's topology
    /// (e.g. dropping the only router level, or a rewire that would
    /// create a cycle).
    Surgery {
        /// Scenario id.
        id: String,
        /// What the surgery op objected to.
        message: String,
    },
    /// The scenario's `load` block was missing or structurally invalid
    /// (see [`crate::load::LoadSpec::validate`]), or a job-engine run
    /// could not produce a service time.
    Load {
        /// Scenario id.
        id: String,
        /// What the job engine objected to.
        message: String,
    },
}

impl RunnerError {
    fn sim(source: SimError) -> RunnerError {
        RunnerError::Sim {
            id: String::new(),
            source,
        }
    }

    /// Re-attributes the error to scenario `id` (every variant): the
    /// compile stage produces errors without a scenario context —
    /// including *cached* errors replayed for a different scenario of
    /// the same [`CompileKey`] — and the caller stamps its own id on,
    /// so cached and fresh failures render identically.
    pub(crate) fn with_id(self, id: &str) -> RunnerError {
        let id = id.to_string();
        match self {
            RunnerError::UnknownWorkload { .. } => RunnerError::UnknownWorkload { id },
            RunnerError::Compile { message, .. } => RunnerError::Compile { id, message },
            RunnerError::MissingTopology { .. } => RunnerError::MissingTopology { id },
            RunnerError::MissingHub { .. } => RunnerError::MissingHub { id },
            RunnerError::Sim { source, .. } => RunnerError::Sim { id, source },
            RunnerError::Surgery { message, .. } => RunnerError::Surgery { id, message },
            RunnerError::Load { message, .. } => RunnerError::Load { id, message },
        }
    }
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::UnknownWorkload { id } => write!(f, "{id}: unknown workload"),
            RunnerError::Compile { id, message } => write!(f, "{id}: compile failed: {message}"),
            RunnerError::MissingTopology { id } => {
                let prefix = if id.is_empty() {
                    String::new()
                } else {
                    format!("{id}: ")
                };
                write!(f, "{prefix}BISP systems need their compilation topology")
            }
            RunnerError::MissingHub { id } => {
                let prefix = if id.is_empty() {
                    String::new()
                } else {
                    format!("{id}: ")
                };
                write!(f, "{prefix}lock-step systems carry a hub spec")
            }
            RunnerError::Sim { id, source } if id.is_empty() => write!(f, "{source}"),
            RunnerError::Sim { id, source } => write!(f, "{id}: {source}"),
            RunnerError::Surgery { id, message } => {
                write!(f, "{id}: invalid surgery: {message}")
            }
            RunnerError::Load { id, message } => {
                write!(f, "{id}: invalid load: {message}")
            }
        }
    }
}

impl Error for RunnerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunnerError::Sim { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SimError> for RunnerError {
    fn from(source: SimError) -> RunnerError {
        RunnerError::sim(source)
    }
}

/// Describes a compiled program as a declarative [`SystemSpec`].
///
/// For [`Scheme::Bisp`] the topology that the circuit was compiled
/// against must be supplied (controllers, mesh links, and the router
/// tree are described from it). For [`Scheme::Lockstep`] a star
/// system is described: bare controllers plus the broadcast hub.
///
/// # Errors
///
/// Returns [`RunnerError::MissingTopology`] if a BISP program is
/// described without its topology, or [`RunnerError::MissingHub`] if a
/// lock-step compile result carries no hub.
pub fn system_spec(
    compiled: &CompiledSystem,
    topology: Option<&Topology>,
) -> Result<SystemSpec, RunnerError> {
    let mut spec = match compiled.scheme {
        Scheme::Bisp => {
            let topology = topology.ok_or(RunnerError::MissingTopology { id: String::new() })?;
            let programs = compiled
                .programs
                .iter()
                .map(|(&addr, program)| (addr, program.insts().to_vec()))
                .collect();
            SystemSpec::from_topology(topology, programs)
        }
        Scheme::Lockstep => {
            let hub = compiled
                .hub
                .ok_or(RunnerError::MissingHub { id: String::new() })?;
            let config = hisq_sim::SimConfig {
                default_classical_latency: hub.up_latency,
                ..hisq_sim::SimConfig::default()
            };
            let mut spec = SystemSpec::new();
            spec.config(config);
            spec.hub(
                hub.addr,
                Hub {
                    subscribers: compiled.programs.keys().copied().collect(),
                    down_latency: hub.down_latency,
                },
            );
            for (&addr, program) in &compiled.programs {
                spec.controller(
                    NodeConfig::new(addr).with_pipeline_headroom(32),
                    program.insts().to_vec(),
                );
            }
            spec
        }
    };
    apply_bindings(
        &mut spec,
        &compiled.bindings,
        compiled.durations.measurement,
    );
    Ok(spec)
}

/// Builds a ready-to-run [`System`] from a compiled program — the
/// [`system_spec`] description, validated and built.
///
/// # Errors
///
/// Returns [`RunnerError`] if the description is incomplete (missing
/// topology/hub) or node addresses collide (a compiler bug).
pub fn build_system(
    compiled: &CompiledSystem,
    topology: Option<&Topology>,
) -> Result<System, RunnerError> {
    system_spec(compiled, topology)?
        .build()
        .map_err(RunnerError::sim)
}

/// Installs codeword bindings into a system description.
fn apply_bindings(spec: &mut SystemSpec, bindings: &[Binding], meas_latency: u64) {
    for binding in bindings {
        match &binding.action {
            BindingAction::Gate { gate, qubits } => {
                spec.bind(
                    binding.node,
                    binding.port,
                    binding.codeword,
                    QuantumAction::Gate {
                        gate: *gate,
                        qubits: qubits.clone(),
                    },
                );
            }
            BindingAction::Measure { qubit } => {
                debug_assert_eq!(binding.port, PORT_READOUT);
                let _ = meas_latency; // result latency comes from SimConfig durations
                spec.bind(
                    binding.node,
                    binding.port,
                    binding.codeword,
                    QuantumAction::Measure { qubit: *qubit },
                );
            }
            BindingAction::Reset { qubit } => {
                spec.bind(
                    binding.node,
                    binding.port,
                    binding.codeword,
                    QuantumAction::Reset { qubit: *qubit },
                );
            }
            BindingAction::Pulse => {}
        }
    }
}

/// The outcome of one compiled-and-simulated run: the simulator report
/// plus the paper's derived metrics.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Engine report (makespan, stalls, instruction counts, …).
    pub report: SimReport,
    /// End-to-end program runtime in nanoseconds.
    pub runtime_ns: u64,
    /// Circuit infidelity under the given coherence parameters
    /// (Figure 16's metric).
    pub infidelity: f64,
}

/// Compiles-in-place convenience: builds, runs, and summarizes a system.
///
/// # Errors
///
/// Propagates [`RunnerError`] from system construction or the run.
pub fn run_compiled(
    compiled: &CompiledSystem,
    topology: Option<&Topology>,
    backend: impl QuantumBackend + 'static,
    coherence: CoherenceParams,
) -> Result<RunMetrics, RunnerError> {
    let mut system = build_system(compiled, topology)?;
    system.set_backend(backend);
    let report = system.run().map_err(RunnerError::sim)?;
    let runtime_ns = report.makespan_cycles * CYCLE_NS;
    let infidelity = system.exposure().infidelity(coherence);
    Ok(RunMetrics {
        report,
        runtime_ns,
        infidelity,
    })
}

/// A spec-surgery transform: a declarative edit applied to a scenario
/// before it runs, making "the same experiment, with one structural
/// change" expressible as a first-class sweep axis (and a scenario-file
/// field) instead of a forked binary.
///
/// Topology ops ([`DropRouterLevel`](SurgeryOp::DropRouterLevel),
/// [`RewireSubtree`](SurgeryOp::RewireSubtree)) mutate the built
/// router tree *before* compilation, so the BISP compiler places
/// region syncs against the surgered tree. Scenario ops
/// ([`SwapWorkload`](SurgeryOp::SwapWorkload),
/// [`OverrideLinkModel`](SurgeryOp::OverrideLinkModel),
/// [`OverrideNoise`](SurgeryOp::OverrideNoise)) replace the
/// corresponding scenario field, and the heat ops
/// ([`HeatEdge`](SurgeryOp::HeatEdge),
/// [`HeatQubit`](SurgeryOp::HeatQubit)) push one per-edge/per-qubit
/// override on top of whatever the parameters declare (see
/// [`effective_maps`] for the resolution order). Ops apply in list
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum SurgeryOp {
    /// Remove the bottom router level, splicing its children into
    /// their grandparents (see
    /// [`Topology::drop_router_level`]) — a flatter,
    /// higher-fan-in synchronization tree.
    DropRouterLevel,
    /// Reattach the subtree rooted at `subtree` under router
    /// `new_parent` (see [`Topology::rewire_subtree`]) —
    /// a region reporting through a different coordinator.
    RewireSubtree {
        /// Root of the moved subtree (controller or router address).
        subtree: NodeAddr,
        /// The router that adopts it.
        new_parent: NodeAddr,
    },
    /// Run a different workload with otherwise identical parameters.
    SwapWorkload {
        /// The replacement workload.
        workload: WorkloadSpec,
    },
    /// Replace the classical link contention model.
    OverrideLinkModel {
        /// The replacement model.
        link_model: LinkModel,
    },
    /// Replace the quantum noise model.
    OverrideNoise {
        /// The replacement model.
        noise: NoiseModel,
    },
    /// Heat one directed fabric edge: run `link_model` on the
    /// `from → to` link while every other link keeps the scenario's
    /// default — "the same machine, with one degraded cable".
    HeatEdge {
        /// Source endpoint of the heated link.
        from: NodeAddr,
        /// Destination endpoint of the heated link.
        to: NodeAddr,
        /// The model the heated link runs.
        link_model: LinkModel,
    },
    /// Heat one physical qubit: score (and sample) `noise` on that
    /// qubit while every other qubit keeps the scenario's default —
    /// "the same device, with one lossy transmon".
    HeatQubit {
        /// The heated physical qubit (= controller index).
        qubit: usize,
        /// The model the heated qubit runs.
        noise: NoiseModel,
    },
}

/// Short stable rendering of a [`LinkModel`] for scenario-id segments:
/// `serN.cK[.lossPPM.sSEED.aATTEMPTS]`.
fn link_model_fragment(model: &LinkModel) -> String {
    let mut frag = format!("ser{}.c{}", model.serialization_ns, model.capacity);
    if let Some(drop) = model.drop {
        frag.push_str(&format!(
            ".loss{}.s{}.a{}",
            drop.loss_ppm, drop.seed, drop.max_attempts
        ));
    }
    frag
}

/// Short stable rendering of a [`NoiseModel`] for scenario-id segments:
/// `p1qA.p2qB.mC.iD.lE` (every rate, so grid points along any noise
/// axis stay unique).
fn noise_fragment(noise: &NoiseModel) -> String {
    format!(
        "p1q{}.p2q{}.m{}.i{}.l{}",
        noise.p_gate_1q, noise.p_gate_2q, noise.p_meas, noise.p_idle_per_ns, noise.p_leak
    )
}

impl SurgeryOp {
    /// Short stable fragment for scenario ids (see [`Scenario::id`]).
    fn id_fragment(&self) -> String {
        match self {
            SurgeryOp::DropRouterLevel => "droplevel".to_string(),
            SurgeryOp::RewireSubtree {
                subtree,
                new_parent,
            } => format!("rewire{subtree}-{new_parent}"),
            SurgeryOp::SwapWorkload { workload } => format!("swap-{}", workload.label()),
            SurgeryOp::OverrideLinkModel { link_model } => {
                format!("lm-{}", link_model_fragment(link_model))
            }
            SurgeryOp::OverrideNoise { noise } => format!("noise-{}", noise_fragment(noise)),
            SurgeryOp::HeatEdge {
                from,
                to,
                link_model,
            } => format!("heatedge{from}-{to}.{}", link_model_fragment(link_model)),
            SurgeryOp::HeatQubit { qubit, noise } => {
                format!("heatqubit{qubit}.{}", noise_fragment(noise))
            }
        }
    }

    /// Serializes the op as an `op`-tagged object, e.g.
    /// `{"op":"rewire_subtree","subtree":5,"new_parent":21}`.
    pub fn to_json(&self) -> Json {
        match self {
            SurgeryOp::DropRouterLevel => {
                Json::Object(vec![("op".into(), Json::str("drop_router_level"))])
            }
            SurgeryOp::RewireSubtree {
                subtree,
                new_parent,
            } => Json::Object(vec![
                ("op".into(), Json::str("rewire_subtree")),
                ("subtree".into(), (*subtree).into()),
                ("new_parent".into(), (*new_parent).into()),
            ]),
            SurgeryOp::SwapWorkload { workload } => Json::Object(vec![
                ("op".into(), Json::str("swap_workload")),
                ("workload".into(), workload.to_json()),
            ]),
            SurgeryOp::OverrideLinkModel { link_model } => Json::Object(vec![
                ("op".into(), Json::str("override_link_model")),
                ("link_model".into(), link_model.to_json()),
            ]),
            SurgeryOp::OverrideNoise { noise } => Json::Object(vec![
                ("op".into(), Json::str("override_noise")),
                ("noise".into(), noise.to_json()),
            ]),
            SurgeryOp::HeatEdge {
                from,
                to,
                link_model,
            } => Json::Object(vec![
                ("op".into(), Json::str("heat_edge")),
                ("from".into(), (*from).into()),
                ("to".into(), (*to).into()),
                ("link_model".into(), link_model.to_json()),
            ]),
            SurgeryOp::HeatQubit { qubit, noise } => Json::Object(vec![
                ("op".into(), Json::str("heat_qubit")),
                ("qubit".into(), (*qubit).into()),
                ("noise".into(), noise.to_json()),
            ]),
        }
    }

    /// Parses an op serialized by [`SurgeryOp::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for an unknown `op` tag,
    /// missing/unknown fields, or wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<SurgeryOp, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let tag_path = obj.field_path("op");
        let tag = obj.required("op")?.as_str(&tag_path)?.to_owned();
        let op = match tag.as_str() {
            "drop_router_level" => SurgeryOp::DropRouterLevel,
            "rewire_subtree" => SurgeryOp::RewireSubtree {
                subtree: obj
                    .required("subtree")?
                    .as_u16(&obj.field_path("subtree"))?,
                new_parent: obj
                    .required("new_parent")?
                    .as_u16(&obj.field_path("new_parent"))?,
            },
            "swap_workload" => SurgeryOp::SwapWorkload {
                workload: WorkloadSpec::from_json(
                    obj.required("workload")?,
                    &obj.field_path("workload"),
                )?,
            },
            "override_link_model" => SurgeryOp::OverrideLinkModel {
                link_model: LinkModel::from_json(
                    obj.required("link_model")?,
                    &obj.field_path("link_model"),
                )?,
            },
            "override_noise" => SurgeryOp::OverrideNoise {
                noise: NoiseModel::from_json(obj.required("noise")?, &obj.field_path("noise"))?,
            },
            "heat_edge" => SurgeryOp::HeatEdge {
                from: obj.required("from")?.as_u16(&obj.field_path("from"))?,
                to: obj.required("to")?.as_u16(&obj.field_path("to"))?,
                link_model: LinkModel::from_json(
                    obj.required("link_model")?,
                    &obj.field_path("link_model"),
                )?,
            },
            "heat_qubit" => SurgeryOp::HeatQubit {
                qubit: obj.required("qubit")?.as_usize(&obj.field_path("qubit"))?,
                noise: NoiseModel::from_json(obj.required("noise")?, &obj.field_path("noise"))?,
            },
            other => {
                return Err(JsonError::decode(
                    tag_path,
                    format!(
                        "unknown surgery op \"{other}\" (expected \"drop_router_level\", \
                         \"rewire_subtree\", \"swap_workload\", \"override_link_model\", \
                         \"override_noise\", \"heat_edge\", or \"heat_qubit\")"
                    ),
                ))
            }
        };
        obj.reject_unknown()?;
        Ok(op)
    }
}

/// One per-directed-edge link-model override of a scenario's fabric:
/// the `from → to` link runs `link_model` while every other link keeps
/// the scenario default. The scenario-grammar form is
/// `{"from": a, "to": b, "model": {...}}` (the same shape
/// [`SystemSpec`]'s `link_overrides` field uses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOverride {
    /// Source endpoint of the overridden link.
    pub from: NodeAddr,
    /// Destination endpoint of the overridden link.
    pub to: NodeAddr,
    /// The model that directed link runs.
    pub link_model: LinkModel,
}

impl LinkOverride {
    /// Serializes the override as `{"from": a, "to": b, "model": {...}}`.
    pub fn to_json(&self) -> Json {
        edge_override_to_json(self.from, self.to, &self.link_model)
    }

    /// Parses an override serialized by [`LinkOverride::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields or
    /// a malformed model.
    pub fn from_json(value: &Json, path: &str) -> Result<LinkOverride, JsonError> {
        let (from, to, link_model) = edge_override_from_json(value, path)?;
        Ok(LinkOverride {
            from,
            to,
            link_model,
        })
    }
}

/// One per-qubit noise-model override of a scenario's device: physical
/// qubit `qubit` runs `noise` while every other qubit keeps the
/// scenario default. The scenario-grammar form is
/// `{"qubit": q, "noise": {...}}` (the same shape [`NoiseMap`]'s
/// `overrides` entries use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseOverride {
    /// The overridden physical qubit (= controller index).
    pub qubit: usize,
    /// The model that qubit runs.
    pub noise: NoiseModel,
}

impl NoiseOverride {
    /// Serializes the override as `{"qubit": q, "noise": {...}}`.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("qubit".into(), self.qubit.into()),
            ("noise".into(), self.noise.to_json()),
        ])
    }

    /// Parses an override serialized by [`NoiseOverride::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields or
    /// a malformed model.
    pub fn from_json(value: &Json, path: &str) -> Result<NoiseOverride, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let qubit = obj.required("qubit")?.as_usize(&obj.field_path("qubit"))?;
        let noise = NoiseModel::from_json(obj.required("noise")?, &obj.field_path("noise"))?;
        obj.reject_unknown()?;
        Ok(NoiseOverride { qubit, noise })
    }
}

/// System-level parameters of a scenario: the mesh/tree link latencies
/// the BISP topology is built with, the star latencies of the
/// lock-step baseline's broadcast hub, the classical-link and
/// quantum-noise models both schemes run under, and the heterogeneous
/// per-edge/per-qubit overrides on top of those defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    /// Mesh-edge latency between neighbouring controllers (cycles).
    pub neighbor_latency: u64,
    /// Tree-edge latency between routers (cycles).
    pub router_latency: u64,
    /// Router fan-in of the synchronization tree.
    pub router_arity: usize,
    /// Baseline controller → hub latency (cycles).
    pub star_up_latency: u64,
    /// Baseline hub → controller broadcast latency (cycles).
    pub star_down_latency: u64,
    /// Contention model every classical link runs — a first-class
    /// sweep axis (default: transparent pure-latency links). Applies to
    /// both schemes: mesh/tree links under BISP, the star's up/down
    /// legs under lock-step.
    pub link_model: LinkModel,
    /// Quantum noise model — a first-class sweep axis (default: exactly
    /// noiseless). A non-default model switches the scenario's backend
    /// to the leakage-aware random backend (so outcomes, and therefore
    /// feedback branches, sample the noise) and adds the analytic
    /// `noise_infidelity` metric scored from the committed operation
    /// counts and the exposure ledger (`fig_noise`'s metric).
    pub noise: NoiseModel,
    /// Per-directed-edge overrides of [`link_model`](Self::link_model)
    /// (default: none — a uniform fabric, byte-identical to the
    /// historical single-model path). Later entries for the same edge
    /// win; an entry equal to the default is a no-op.
    pub link_overrides: Vec<LinkOverride>,
    /// Per-qubit overrides of [`noise`](Self::noise) (default: none — a
    /// uniform device). Later entries for the same qubit win; an entry
    /// equal to the default is a no-op. Any override (even on an
    /// otherwise noiseless device) switches the backend to the
    /// leakage-aware one and enables the noise metrics.
    pub noise_overrides: Vec<NoiseOverride>,
    /// When `true`, the BISP compile stage reads the effective fabric
    /// and noise maps and places the circuit to avoid heated edges and
    /// qubits (see [`hisq_compiler::fabric`]); when `false` (the
    /// default) compilation is fabric-oblivious, exactly the historical
    /// pipeline. Lock-step compilation has no placement freedom and
    /// ignores the flag.
    pub fabric_aware: bool,
}

impl Default for SystemParams {
    /// The paper's Figure 15 defaults: 5-cycle mesh edges, 10-cycle
    /// tree edges, arity 4, 100 ns (25-cycle) star legs, transparent
    /// links, no gate noise.
    fn default() -> SystemParams {
        SystemParams {
            neighbor_latency: 5,
            router_latency: 10,
            router_arity: 4,
            star_up_latency: 25,
            star_down_latency: 25,
            link_model: LinkModel::default(),
            noise: NoiseModel::NOISELESS,
            link_overrides: Vec::new(),
            noise_overrides: Vec::new(),
            fabric_aware: false,
        }
    }
}

impl SystemParams {
    /// Serializes the parameters (every scalar field explicit, so a
    /// committed scenario documents its full configuration; the
    /// override lists and the `fabric_aware` flag are omitted when
    /// empty/false, so uniform-fabric scenarios render exactly as they
    /// always have).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("neighbor_latency".into(), self.neighbor_latency.into()),
            ("router_latency".into(), self.router_latency.into()),
            ("router_arity".into(), self.router_arity.into()),
            ("star_up_latency".into(), self.star_up_latency.into()),
            ("star_down_latency".into(), self.star_down_latency.into()),
            ("link_model".into(), self.link_model.to_json()),
            ("noise".into(), self.noise.to_json()),
        ];
        if !self.link_overrides.is_empty() {
            fields.push((
                "link_overrides".into(),
                Json::Array(
                    self.link_overrides
                        .iter()
                        .map(LinkOverride::to_json)
                        .collect(),
                ),
            ));
        }
        if !self.noise_overrides.is_empty() {
            fields.push((
                "noise_overrides".into(),
                Json::Array(
                    self.noise_overrides
                        .iter()
                        .map(NoiseOverride::to_json)
                        .collect(),
                ),
            ));
        }
        if self.fabric_aware {
            fields.push(("fabric_aware".into(), true.into()));
        }
        Json::Object(fields)
    }

    /// Parses parameters serialized by [`SystemParams::to_json`].
    /// Omitted fields take the paper defaults ([`SystemParams::default`]).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields, wrong
    /// types, or `router_arity < 2` (the topology builder would panic).
    pub fn from_json(value: &Json, path: &str) -> Result<SystemParams, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let mut params = SystemParams::default();
        if let Some(v) = obj.optional("neighbor_latency") {
            params.neighbor_latency = v.as_u64(&obj.field_path("neighbor_latency"))?;
        }
        if let Some(v) = obj.optional("router_latency") {
            params.router_latency = v.as_u64(&obj.field_path("router_latency"))?;
        }
        if let Some(v) = obj.optional("router_arity") {
            params.router_arity = v.as_usize(&obj.field_path("router_arity"))?;
            if params.router_arity < 2 {
                return Err(JsonError::decode(
                    obj.field_path("router_arity"),
                    "router arity must be at least 2",
                ));
            }
        }
        if let Some(v) = obj.optional("star_up_latency") {
            params.star_up_latency = v.as_u64(&obj.field_path("star_up_latency"))?;
        }
        if let Some(v) = obj.optional("star_down_latency") {
            params.star_down_latency = v.as_u64(&obj.field_path("star_down_latency"))?;
        }
        if let Some(v) = obj.optional("link_model") {
            params.link_model = LinkModel::from_json(v, &obj.field_path("link_model"))?;
        }
        if let Some(v) = obj.optional("noise") {
            params.noise = NoiseModel::from_json(v, &obj.field_path("noise"))?;
        }
        if let Some(v) = obj.optional("link_overrides") {
            let list_path = obj.field_path("link_overrides");
            let mut seen = std::collections::BTreeSet::new();
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let over = LinkOverride::from_json(entry, &entry_path)?;
                if !seen.insert((over.from, over.to)) {
                    return Err(JsonError::decode(
                        entry_path,
                        format!("duplicate override for edge {} -> {}", over.from, over.to),
                    ));
                }
                params.link_overrides.push(over);
            }
        }
        if let Some(v) = obj.optional("noise_overrides") {
            let list_path = obj.field_path("noise_overrides");
            let mut seen = std::collections::BTreeSet::new();
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let over = NoiseOverride::from_json(entry, &entry_path)?;
                if !seen.insert(over.qubit) {
                    return Err(JsonError::decode(
                        entry_path,
                        format!("duplicate override for qubit {}", over.qubit),
                    ));
                }
                params.noise_overrides.push(over);
            }
        }
        if let Some(v) = obj.optional("fabric_aware") {
            params.fabric_aware = v.as_bool(&obj.field_path("fabric_aware"))?;
        }
        obj.reject_unknown()?;
        Ok(params)
    }
}

/// One experiment point of a sweep: workload × scheme × system
/// parameters × seed × coherence time.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The workload to compile and run.
    pub workload: WorkloadSpec,
    /// Execution scheme (Distributed-HISQ BISP or lock-step baseline).
    pub scheme: Scheme,
    /// Seed of the random measurement backend.
    pub seed: u64,
    /// Relaxation time T1 = T2 (µs) the infidelity metric is scored at.
    pub t1_us: f64,
    /// Program repetitions per run. Under BISP every shot after the
    /// first opens with a region-level synchronization against the
    /// router tree (§2.1.4), so multi-shot scenarios are the ones where
    /// tree surgery is timing-visible; lock-step unrolls shots
    /// statically.
    pub shots: u32,
    /// Link latencies and baseline star parameters.
    pub params: SystemParams,
    /// Spec-surgery transforms applied before the run (usually empty).
    pub surgery: Vec<SurgeryOp>,
    /// Optional multi-tenant load block: when set, the scenario runs
    /// the [`crate::load`] job engine (arrival streams multiplexed
    /// over controller partitions, each job an instance of this
    /// scenario) instead of a single program run.
    pub load: Option<LoadSpec>,
}

impl Scenario {
    /// A scenario with the paper-default seed (1), coherence (300 µs),
    /// and system parameters.
    pub fn new(workload: WorkloadSpec, scheme: Scheme) -> Scenario {
        Scenario {
            workload,
            scheme,
            seed: 1,
            t1_us: 300.0,
            shots: 1,
            params: SystemParams::default(),
            surgery: Vec::new(),
            load: None,
        }
    }

    /// Replaces the shot count (builder style).
    #[must_use]
    pub fn with_shots(mut self, shots: u32) -> Scenario {
        self.shots = shots;
        self
    }

    /// Replaces the backend seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Replaces the scored coherence time (builder style).
    #[must_use]
    pub fn with_t1_us(mut self, t1_us: f64) -> Scenario {
        self.t1_us = t1_us;
        self
    }

    /// Replaces the system parameters (builder style).
    #[must_use]
    pub fn with_params(mut self, params: SystemParams) -> Scenario {
        self.params = params;
        self
    }

    /// Appends a spec-surgery transform (builder style).
    #[must_use]
    pub fn with_surgery(mut self, op: SurgeryOp) -> Scenario {
        self.surgery.push(op);
        self
    }

    /// Attaches a multi-tenant load block (builder style).
    #[must_use]
    pub fn with_load(mut self, load: LoadSpec) -> Scenario {
        self.load = Some(load);
        self
    }

    /// Stable identifier used as the sweep-record id (and for pairing
    /// scheme twins in the figure harnesses).
    ///
    /// Default-link-model single-shot ids are unchanged from their
    /// historical form; a multi-shot scenario appends a `/shotsN`
    /// segment, and a contended model appends a
    /// `/serN.cK[.lossPPM.sSEED.aATTEMPTS]` segment covering every
    /// [`LinkModel`] field, so grid points along *any* link-model axis
    /// (serialization, capacity, loss rate, drop seed, attempt budget)
    /// stay unique. A non-default noise model likewise appends a
    /// `/p1qA.p2qB.mC.iD.lE` segment covering every [`NoiseModel`]
    /// rate, so grid points along any noise axis stay unique too.
    /// Heterogeneous scenarios append one `/loF-T.<link frag>` segment
    /// per link override, one `/noQ.<noise frag>` segment per noise
    /// override, and `/aware` when fabric-aware compilation is on —
    /// all absent on uniform fabrics, keeping historical ids intact.
    pub fn id(&self) -> String {
        let scheme = match self.scheme {
            Scheme::Bisp => "bisp",
            Scheme::Lockstep => "lockstep",
        };
        let mut id = format!(
            "{}/{}/seed{}/t{}",
            self.workload.label(),
            scheme,
            self.seed,
            self.t1_us
        );
        // Single-shot ids are unchanged from their historical form.
        if self.shots != 1 {
            id.push_str(&format!("/shots{}", self.shots));
        }
        let model = self.params.link_model;
        if model != LinkModel::default() {
            id.push_str(&format!("/{}", link_model_fragment(&model)));
        }
        let noise = self.params.noise;
        if !noise.is_noiseless() {
            id.push_str(&format!("/{}", noise_fragment(&noise)));
        }
        // Uniform-fabric ids are unchanged from their historical form:
        // override segments (and the `/aware` marker) only appear when
        // the corresponding heterogeneity is actually declared.
        for over in &self.params.link_overrides {
            id.push_str(&format!(
                "/lo{}-{}.{}",
                over.from,
                over.to,
                link_model_fragment(&over.link_model)
            ));
        }
        for over in &self.params.noise_overrides {
            id.push_str(&format!(
                "/no{}.{}",
                over.qubit,
                noise_fragment(&over.noise)
            ));
        }
        if self.params.fabric_aware {
            id.push_str("/aware");
        }
        // Surgery-free ids are unchanged from their historical form.
        for op in &self.surgery {
            id.push_str("/x-");
            id.push_str(&op.id_fragment());
        }
        // Load-free ids are unchanged from their historical form.
        if let Some(load) = &self.load {
            id.push_str(&format!("/{}", load.id_fragment()));
        }
        id
    }

    /// Serializes the scenario for the scenario-file surface
    /// (`hisq run`). Every field is explicit.
    pub fn to_json(&self) -> Json {
        let scheme = match self.scheme {
            Scheme::Bisp => "bisp",
            Scheme::Lockstep => "lockstep",
        };
        let mut fields = vec![
            ("workload".into(), self.workload.to_json()),
            ("scheme".into(), Json::str(scheme)),
            ("seed".into(), self.seed.into()),
            ("t1_us".into(), Json::float(self.t1_us)),
            ("shots".into(), u64::from(self.shots).into()),
            ("params".into(), self.params.to_json()),
        ];
        if !self.surgery.is_empty() {
            fields.push((
                "surgery".into(),
                Json::Array(self.surgery.iter().map(SurgeryOp::to_json).collect()),
            ));
        }
        if let Some(load) = &self.load {
            fields.push(("load".into(), load.to_json()));
        }
        Json::Object(fields)
    }

    /// Parses a scenario serialized by [`Scenario::to_json`]. Only
    /// `workload` and `scheme` are required; `seed`, `t1_us`, `shots`,
    /// `params`, and `surgery` default as in [`Scenario::new`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields,
    /// an unknown scheme, or wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<Scenario, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let workload =
            WorkloadSpec::from_json(obj.required("workload")?, &obj.field_path("workload"))?;
        let scheme_path = obj.field_path("scheme");
        let scheme = match obj.required("scheme")?.as_str(&scheme_path)? {
            "bisp" => Scheme::Bisp,
            "lockstep" => Scheme::Lockstep,
            other => {
                return Err(JsonError::decode(
                    scheme_path,
                    format!("unknown scheme \"{other}\" (expected \"bisp\" or \"lockstep\")"),
                ))
            }
        };
        let mut scenario = Scenario::new(workload, scheme);
        if let Some(v) = obj.optional("seed") {
            scenario.seed = v.as_u64(&obj.field_path("seed"))?;
        }
        if let Some(v) = obj.optional("t1_us") {
            scenario.t1_us = v.as_f64(&obj.field_path("t1_us"))?;
        }
        if let Some(v) = obj.optional("shots") {
            let shots_path = obj.field_path("shots");
            scenario.shots = v.as_u32(&shots_path)?;
            if scenario.shots == 0 {
                return Err(JsonError::decode(shots_path, "shots must be at least 1"));
            }
        }
        if let Some(v) = obj.optional("params") {
            scenario.params = SystemParams::from_json(v, &obj.field_path("params"))?;
        }
        if let Some(v) = obj.optional("surgery") {
            let list_path = obj.field_path("surgery");
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                scenario
                    .surgery
                    .push(SurgeryOp::from_json(entry, &format!("{list_path}[{i}]"))?);
            }
        }
        if let Some(v) = obj.optional("load") {
            scenario.load = Some(LoadSpec::from_json(v, &obj.field_path("load"))?);
        }
        obj.reject_unknown()?;
        Ok(scenario)
    }

    /// The scenario's compile-stage identity: every input the
    /// **compile → place → describe** pipeline stage reads, and nothing
    /// it does not. Two scenarios with equal keys compile to
    /// bit-identical programs and system descriptions (the
    /// `compile_cache_equivalence` suite asserts exactly this), so a
    /// sweep's [`CompileCache`] shares one [`CompiledArtifact`] across
    /// grid points that differ only in seed, noise, coherence time, or
    /// link model — the axes the paper figures actually sweep.
    pub fn compile_key(&self) -> CompileKey {
        // Scenario-level surgery folds into the effective inputs the
        // same way `compile_scenario` applies it: the last workload
        // swap wins; link-model and noise overrides are run-stage
        // parameters the compiler never sees. The load block is
        // run-stage too (the job engine schedules *instances* of the
        // compiled program), so a load sweep's grid points share one
        // artifact with their unloaded twin.
        let mut workload = self.workload.clone();
        for op in &self.surgery {
            if let SurgeryOp::SwapWorkload { workload: w } = op {
                workload = w.clone();
            }
        }
        let topology_surgery = self
            .surgery
            .iter()
            .filter_map(|op| match op {
                SurgeryOp::DropRouterLevel => Some(TopologySurgeryKey::DropRouterLevel),
                SurgeryOp::RewireSubtree {
                    subtree,
                    new_parent,
                } => Some(TopologySurgeryKey::RewireSubtree {
                    subtree: *subtree,
                    new_parent: *new_parent,
                }),
                _ => None,
            })
            .collect();
        // The lock-step compiler is the only reader of the star
        // latencies; zeroing them under BISP lets BISP grid points
        // that sweep the baseline's star share one artifact.
        let star_latencies = match self.scheme {
            Scheme::Bisp => (0, 0),
            Scheme::Lockstep => (self.params.star_up_latency, self.params.star_down_latency),
        };
        // Fabric-aware compilation *does* read the effective fabric and
        // noise maps (placement depends on them), so an aware scenario
        // keys on their canonical JSON. Oblivious scenarios keep the
        // historical key and go on sharing artifacts across link-model
        // and noise axes.
        let fabric = if self.params.fabric_aware {
            let (fabric, noise) = effective_maps(self);
            Some(format!(
                "{}\n{}",
                fabric.to_json().to_string_compact(),
                noise.to_json().to_string_compact()
            ))
        } else {
            None
        };
        CompileKey {
            workload_json: workload.to_json().to_string_compact(),
            scheme: match self.scheme {
                Scheme::Bisp => 0,
                Scheme::Lockstep => 1,
            },
            shots: self.shots,
            neighbor_latency: self.params.neighbor_latency,
            router_latency: self.params.router_latency,
            router_arity: self.params.router_arity,
            star_latencies,
            topology_surgery,
            fabric,
        }
    }
}

/// The effective heterogeneity maps of a scenario: the parameter-level
/// defaults and override lists, with the scenario's surgery ops folded
/// on top in list order. The resolution order is **default →
/// per-edge/per-qubit override → surgery override**:
/// [`SurgeryOp::OverrideLinkModel`]/[`SurgeryOp::OverrideNoise`]
/// replace the *default* (keeping distinct per-edge/per-qubit entries),
/// while [`SurgeryOp::HeatEdge`]/[`SurgeryOp::HeatQubit`] push one more
/// override (last write to an edge/qubit wins).
///
/// This is the single source of truth both the compile stage (under
/// fabric-aware placement) and the run stage (engine link queues,
/// backend noise, metric gating) consume, so the two can never disagree
/// about what fabric a scenario runs on.
pub fn effective_maps(scenario: &Scenario) -> (FabricMap, NoiseMap) {
    let p = &scenario.params;
    let mut fabric = FabricMap::uniform(p.link_model);
    for over in &p.link_overrides {
        fabric.set_edge(over.from, over.to, over.link_model);
    }
    let mut noise = NoiseMap::uniform(p.noise);
    for over in &p.noise_overrides {
        noise.set_qubit(over.qubit, over.noise);
    }
    for op in &scenario.surgery {
        match op {
            SurgeryOp::OverrideLinkModel { link_model } => fabric.set_default(*link_model),
            SurgeryOp::OverrideNoise { noise: model } => noise.set_default(*model),
            SurgeryOp::HeatEdge {
                from,
                to,
                link_model,
            } => fabric.set_edge(*from, *to, *link_model),
            SurgeryOp::HeatQubit {
                qubit,
                noise: model,
            } => noise.set_qubit(*qubit, *model),
            SurgeryOp::SwapWorkload { .. }
            | SurgeryOp::DropRouterLevel
            | SurgeryOp::RewireSubtree { .. } => {}
        }
    }
    (fabric, noise)
}

/// The hashable identity of a scenario's compile stage (see
/// [`Scenario::compile_key`]). Deliberately *excludes* the run-stage
/// axes — backend seed, noise model, coherence time, and the link
/// contention model: the oblivious compiler never reads them (the
/// topology's embedded link model is overridden per scenario after the
/// cached description is cloned), so scenarios differing only along
/// those axes hash and compare equal and share one compiled artifact.
/// The one exception is fabric-*aware* compilation, whose placement
/// pass does read the effective fabric/noise maps — aware scenarios
/// additionally key on the maps' canonical encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompileKey {
    /// Effective workload (post scenario surgery), in its canonical
    /// JSON form — the only total encoding [`WorkloadSpec`] has.
    workload_json: String,
    /// Scheme tag (0 = BISP, 1 = lock-step).
    scheme: u8,
    /// Shot count (compiled into the program: BISP loops shots against
    /// the region tree; lock-step unrolls them).
    shots: u32,
    neighbor_latency: u64,
    router_latency: u64,
    router_arity: usize,
    /// Star up/down latencies; zeroed under BISP (unread there).
    star_latencies: (u64, u64),
    /// Topology surgery ops in application order (validity and effect
    /// both depend on the tree they apply to, so they are part of the
    /// compile identity even when a later op fails).
    topology_surgery: Vec<TopologySurgeryKey>,
    /// Canonical JSON of the effective fabric and noise maps when the
    /// scenario compiles fabric-aware (placement reads them); `None`
    /// for oblivious scenarios, which share artifacts across the
    /// link-model and noise axes exactly as before.
    fabric: Option<String>,
}

/// Hashable mirror of the topology-mutating [`SurgeryOp`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TopologySurgeryKey {
    DropRouterLevel,
    RewireSubtree {
        subtree: NodeAddr,
        new_parent: NodeAddr,
    },
}

/// The reusable output of a scenario's compile stage: the validated
/// system description (backend and link model still unset — those are
/// run-stage), plus the metric inputs [`run_scenario`] needs from the
/// built workload. Shared behind an [`Arc`] by every grid point of a
/// sweep whose [`CompileKey`] matches.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    /// The compiled system as a declarative spec (cloned, then given
    /// its backend + link model, per consuming scenario).
    spec: SystemSpec,
    /// Output data qubits of the workload (Figure-16 scoring).
    data_sites: Vec<usize>,
    /// Machine-code fingerprint of the compiled programs (see
    /// [`CompiledSystem::fingerprint`]).
    fingerprint: u64,
}

impl CompiledArtifact {
    /// FNV-1a fingerprint of the compiled program words (scheme +
    /// per-controller machine code) — equal fingerprints mean the
    /// compiler emitted bit-identical programs.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Number of independently-locked shards of a [`CompileCache`]. Eight
/// comfortably exceeds the sweep pool's typical thread counts, so two
/// workers only contend when their keys land in one shard *and* both
/// are in the (brief) lookup critical section — compilation itself
/// runs outside the shard lock.
const CACHE_SHARDS: usize = 8;

/// One cache slot: a leader-computes cell. The first worker to claim
/// the key compiles inside [`OnceLock::get_or_init`]; concurrent
/// workers with the same key block on the cell (not the shard lock)
/// and wake to the shared result. Errors are cached too — a failing
/// compile fails every scenario of the key identically, each
/// re-attributed to its own id.
type CacheCell = Arc<OnceLock<Result<Arc<CompiledArtifact>, RunnerError>>>;

/// A lock-sharded, leader-computes cache of compile-stage artifacts,
/// shared across the grid points of a sweep (see [`run_sweep_cached`];
/// [`run_sweep`] threads one through automatically). Grid points
/// differing only in seed, noise, shots-independent scoring inputs, or
/// link model hit the same [`CompileKey`] and reuse one compiled
/// program — byte-identical results to compiling fresh per point,
/// pinned by the determinism FNV tests and the
/// `compile_cache_equivalence` suite.
#[derive(Debug, Default)]
pub struct CompileCache {
    shards: [Mutex<HashMap<CompileKey, CacheCell>>; CACHE_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Lookups that reused an already-compiled (or in-flight) artifact.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that compiled their key (the leader of each cell).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The artifact for `scenario`'s compile key, compiling it on this
    /// thread if no worker has yet. Errors come back *without* a
    /// scenario id (the caller stamps its own via `with_id`).
    pub(crate) fn get_or_compile(
        &self,
        scenario: &Scenario,
    ) -> Result<Arc<CompiledArtifact>, RunnerError> {
        let key = scenario.compile_key();
        let mut hasher = std::hash::DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.shards[hasher.finish() as usize % CACHE_SHARDS];
        let cell = shard
            .lock()
            .expect("compile-cache shard lock")
            .entry(key)
            .or_default()
            .clone();
        let mut compiled_here = false;
        let result = cell.get_or_init(|| {
            compiled_here = true;
            compile_stage(scenario).map(Arc::new)
        });
        if compiled_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }
}

/// Runs `scenario`'s compile stage fresh (no cache): surgery fold,
/// workload build, topology construction + surgery, compilation, and
/// the system description — everything [`run_scenario`] does before
/// seeding a backend. Exposed for the cache-equivalence suite; sweep
/// callers get this transparently through [`run_sweep`].
///
/// # Errors
///
/// The compile-time subset of [`run_scenario`]'s errors (unknown
/// workload, invalid surgery, compile failure, incomplete description),
/// attributed to the scenario's id.
pub fn compile_scenario(scenario: &Scenario) -> Result<CompiledArtifact, RunnerError> {
    compile_stage(scenario).map_err(|e| e.with_id(&scenario.id()))
}

/// Executes one scenario end to end — build circuit, build topology,
/// compile, simulate, score — and distills the paper's metrics.
///
/// The record carries: `makespan_cycles` / `makespan_ns` (end-to-end
/// runtime), `instructions`, `syncs`, `stall_cycles` (synchronization
/// overhead), `messages` (engine events processed), `infidelity` at the
/// scenario's coherence time, and the `all_halted` flag. Under a
/// contended link model the record additionally carries
/// `link_messages`, `link_retransmits`, `link_dropped`, and
/// `link_peak_occupancy`; under a non-default noise model it carries
/// `noise_infidelity` (the analytic gate-error score) plus the
/// `gates_1q`/`gates_2q`/`measurements` operation counts; a nonzero
/// routing-warning count surfaces as `routing_warnings`
/// (default-model records stay byte-identical to their historical
/// form).
///
/// # Errors
///
/// Returns [`RunnerError`] if the workload name is unknown,
/// compilation fails, node addresses collide, or the simulation faults
/// — all reported with the scenario id for context.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, RunnerError> {
    run_scenario_with(scenario, None)
}

/// [`run_scenario`] with the compile stage served from `cache` — the
/// per-point body of [`run_sweep_cached`]. Results are byte-identical
/// to the uncached path; only the compile work is shared.
///
/// # Errors
///
/// As [`run_scenario`] (cached compile errors included, re-attributed
/// to this scenario's id).
pub fn run_scenario_cached(
    scenario: &Scenario,
    cache: &CompileCache,
) -> Result<ScenarioReport, RunnerError> {
    run_scenario_with(scenario, Some(cache))
}

fn run_scenario_with(
    scenario: &Scenario,
    cache: Option<&CompileCache>,
) -> Result<ScenarioReport, RunnerError> {
    // Load scenarios run the multi-tenant job engine instead: every
    // job is an instance of this scenario (minus the load block),
    // compiled once through the cache and run per job.
    if scenario.load.is_some() {
        return match cache {
            Some(cache) => crate::load::load_record(scenario, cache),
            None => crate::load::load_record(scenario, &CompileCache::new()),
        };
    }
    let (system, artifact, fabric, noise) = build_scenario_with(scenario, cache)?;
    run_built(scenario, system, artifact, fabric, noise)
}

/// [`run_scenario`] against an already-resolved compile artifact: the
/// run stage alone, with no cache consult. The job engine uses this to
/// run every job of a load scenario from the artifact its `run_load`
/// resolved once.
pub(crate) fn run_scenario_from_artifact(
    scenario: &Scenario,
    artifact: Arc<CompiledArtifact>,
) -> Result<ScenarioReport, RunnerError> {
    let (system, artifact, fabric, noise) = build_from_artifact(scenario, artifact)?;
    run_built(scenario, system, artifact, fabric, noise)
}

/// The run-and-score tail shared by [`run_scenario_with`] and
/// [`run_scenario_from_artifact`]: simulate the built system and
/// distill the scenario's metric record.
fn run_built(
    scenario: &Scenario,
    mut system: System,
    artifact: Arc<CompiledArtifact>,
    fabric: FabricMap,
    noise: NoiseMap,
) -> Result<ScenarioReport, RunnerError> {
    let id = scenario.id();
    let report = system.run().map_err(|e| RunnerError::sim(e).with_id(&id))?;

    let coherence = CoherenceParams::uniform(scenario.t1_us);
    let scored_exposure: ExposureLedger = if artifact.data_sites.is_empty() {
        system.exposure().clone()
    } else {
        // Output data qubits stay coherent from circuit start until the
        // whole dynamic circuit completes (the Figure 16 scoring).
        artifact
            .data_sites
            .iter()
            .map(|&q| (q, 0, report.makespan_ns))
            .collect()
    };
    let infidelity = scored_exposure.infidelity(coherence);

    let mut record = SweepRecord::new(id)
        .with("makespan_cycles", report.makespan_cycles)
        .with("makespan_ns", report.makespan_ns)
        .with("instructions", report.total_instructions)
        .with("syncs", report.total_syncs)
        .with("stall_cycles", report.total_stall_cycles)
        .with("messages", report.events_processed)
        .with("infidelity", infidelity)
        .with("all_halted", report.all_halted);
    if fabric.default_model() != LinkModel::default() || !fabric.is_uniform() {
        let messages: u64 = report.link_stats.iter().map(|l| l.messages).sum();
        record.set("link_messages", messages);
        record.set("link_retransmits", report.total_retransmits());
        record.set("link_dropped", report.total_dropped());
        record.set(
            "link_peak_occupancy",
            u64::from(report.peak_link_occupancy()),
        );
    }
    if !noise.is_noiseless() {
        // Analytic gate-error scoring: expected infidelity from the
        // committed operation counts plus per-nanosecond idle error
        // charged from the same exposure ledger the T1/T2 metric
        // reads. A uniform map scores through the exact closed-form
        // global-count path (byte-identical to the historical single
        // model); a heterogeneous map charges each qubit its own rates
        // from the engine's per-qubit operation counts.
        let noise_infidelity = if noise.is_uniform() {
            noise
                .default_model()
                .infidelity(&report.quantum_ops, &scored_exposure)
        } else {
            noise.infidelity(system.quantum_ops_by_qubit(), &scored_exposure)
        };
        record.set("noise_infidelity", noise_infidelity);
        record.set("gates_1q", report.quantum_ops.gates_1q);
        record.set("gates_2q", report.quantum_ops.gates_2q);
        record.set("measurements", report.quantum_ops.measurements);
    }
    if report.routing_warnings > 0 {
        record.set("routing_warnings", report.routing_warnings);
    }
    Ok(record)
}

/// Builds the ready-to-run [`System`] a scenario describes — surgery,
/// workload, topology, compilation, backend and link-model selection —
/// without running it: [`run_scenario`] up to (but excluding) the
/// `run()` call.
///
/// Exposed so test harnesses can instrument the engine before the run —
/// e.g. record a pop trace ([`System::record_event_trace`]) or select
/// the reference event queue ([`System::use_reference_queue`]) for the
/// wheel-vs-heap differential oracle in `tests/queue_trace_replay.rs`.
///
/// # Errors
///
/// As [`run_scenario`], minus simulation-time failures.
pub fn scenario_system(scenario: &Scenario) -> Result<System, RunnerError> {
    build_scenario_with(scenario, None).map(|(system, _, _, _)| system)
}

/// The pure compile stage: everything a scenario's pipeline does
/// before seed, noise, or link model matter. Reads exactly the inputs
/// [`Scenario::compile_key`] hashes; errors carry no scenario id (the
/// consumer stamps its own on, so cached errors replay verbatim).
fn compile_stage(scenario: &Scenario) -> Result<CompiledArtifact, RunnerError> {
    // Scenario-level surgery first: the effective workload feeds
    // everything downstream (link-model/noise overrides are run-stage
    // and folded by `build_scenario_with` instead).
    let mut workload = scenario.workload.clone();
    for op in &scenario.surgery {
        if let SurgeryOp::SwapWorkload { workload: w } = op {
            workload = w.clone();
        }
    }
    let built = workload
        .build()
        .ok_or_else(|| RunnerError::UnknownWorkload { id: String::new() })?;
    let p = &scenario.params;
    // The topology is built with the *default* link model even when the
    // scenario runs a contended one: neither compiler reads the model,
    // and the spec-level override below the cache seam
    // (`build_scenario_with`) replaces whatever the description
    // inherited — so scenarios differing only in link model share this
    // stage, and results stay byte-identical either way.
    let mut topology = TopologyBuilder::grid(built.grid.0, built.grid.1)
        .neighbor_latency(p.neighbor_latency)
        .router_latency(p.router_latency)
        .router_arity(p.router_arity)
        .build();
    // Topology surgery second, so the compiler places region syncs
    // against the surgered tree.
    for op in &scenario.surgery {
        let result = match op {
            SurgeryOp::DropRouterLevel => topology.drop_router_level(),
            SurgeryOp::RewireSubtree {
                subtree,
                new_parent,
            } => topology.rewire_subtree(*subtree, *new_parent),
            _ => Ok(()),
        };
        result.map_err(|message| RunnerError::Surgery {
            id: String::new(),
            message,
        })?;
    }
    let mut circuit = built.circuit;
    let mut data_sites = built.data_sites;
    // Fabric-aware placement: under BISP, remap circuit qubits onto
    // the grid automorphism that minimizes heated-edge traffic and
    // heated-qubit exposure. A flat fabric plans the identity, so the
    // flag alone never changes a uniform scenario's programs;
    // lock-step has no placement freedom and compiles obliviously.
    if p.fabric_aware && matches!(scenario.scheme, Scheme::Bisp) {
        let (fabric, noise) = effective_maps(scenario);
        let costs = FabricCosts::from_maps(&topology, &fabric, &noise);
        if !costs.is_flat() {
            let placement = plan_placement(&circuit, &data_sites, &topology, &costs);
            let (placed, sites) = apply_placement(&circuit, &data_sites, &placement);
            circuit = placed;
            data_sites = sites;
        }
    }
    let (compiled, topology) = match scenario.scheme {
        Scheme::Bisp => {
            let options = BispOptions {
                shots: scenario.shots,
                ..BispOptions::default()
            };
            let compiled =
                compile_bisp(&circuit, &topology, &options).map_err(|e| RunnerError::Compile {
                    id: String::new(),
                    message: format!("BISP: {e}"),
                })?;
            (compiled, Some(&topology))
        }
        Scheme::Lockstep => {
            let options = LockstepOptions {
                star_up_latency: p.star_up_latency,
                star_down_latency: p.star_down_latency,
                shots: scenario.shots,
                ..LockstepOptions::default()
            };
            let compiled =
                compile_lockstep(&circuit, &options).map_err(|e| RunnerError::Compile {
                    id: String::new(),
                    message: format!("lock-step: {e}"),
                })?;
            (compiled, None)
        }
    };
    let fingerprint = compiled.fingerprint();
    let spec = system_spec(&compiled, topology)?;
    Ok(CompiledArtifact {
        spec,
        data_sites,
        fingerprint,
    })
}

/// The shared scenario-to-[`System`] pipeline behind [`run_scenario`]
/// and [`scenario_system`]: the (possibly cached) compile stage, then
/// the per-scenario tail — clone the description, seed the backend,
/// install the fabric, build. Also returns the artifact and the
/// effective fabric/noise maps the metric distillation needs.
fn build_scenario_with(
    scenario: &Scenario,
    cache: Option<&CompileCache>,
) -> Result<(System, Arc<CompiledArtifact>, FabricMap, NoiseMap), RunnerError> {
    let artifact = match cache {
        Some(cache) => cache.get_or_compile(scenario),
        None => compile_stage(scenario).map(Arc::new),
    }
    .map_err(|e| e.with_id(&scenario.id()))?;
    build_from_artifact(scenario, artifact)
}

/// The cache-free half of [`build_scenario_with`]: backend seeding and
/// fabric resolution onto an already-compiled artifact.
fn build_from_artifact(
    scenario: &Scenario,
    artifact: Arc<CompiledArtifact>,
) -> Result<(System, Arc<CompiledArtifact>, FabricMap, NoiseMap), RunnerError> {
    let id = scenario.id();
    let (fabric, noise) = effective_maps(scenario);
    let mut spec = artifact.spec.clone();
    // Noiseless scenarios keep the historical random backend (and its
    // byte-identical outcome stream); a noisy map samples leakage so
    // sticky readouts steer the feedback branches.
    spec.backend(if noise.is_noiseless() {
        BackendSpec::Random {
            seed: scenario.seed,
            p_one: 0.5,
        }
    } else {
        BackendSpec::Leaky {
            seed: scenario.seed,
            p_one: 0.5,
            noise: noise.clone(),
        }
    });
    // The run-stage fabric: overrides whatever the description
    // inherited (the lock-step star has no topology to inherit from,
    // and the cached BISP description carries the default).
    spec.link_model(fabric.default_model());
    for (from, to, model) in fabric.overrides() {
        spec.link_model_for(from, to, model);
    }
    let system = spec.build().map_err(|e| RunnerError::sim(e).with_id(&id))?;
    Ok((system, artifact, fabric, noise))
}

/// Runs a batch of scenarios on `threads` workers and aggregates their
/// records (in scenario order) into a deterministic report.
///
/// The output is byte-identical for any thread count: records land at
/// their scenario's index and statistics fold in that order. See the
/// module docs for an end-to-end example.
///
/// The compile stage is served from a sweep-scoped [`CompileCache`],
/// so grid points differing only in seed, noise, coherence time, or
/// link model compile once — byte-identical results to compiling
/// fresh per point ([`run_sweep_uncached`] is the differential
/// reference).
///
/// # Errors
///
/// Returns the first failing scenario's [`RunnerError`], in *scenario*
/// order (deterministic regardless of worker scheduling).
pub fn run_sweep(scenarios: &[Scenario], threads: usize) -> Result<SweepReport, RunnerError> {
    run_sweep_cached(scenarios, threads, &CompileCache::new())
}

/// [`run_sweep`] against a caller-owned [`CompileCache`] — for reuse
/// across successive sweeps over the same workloads, and for reading
/// the hit/miss counters afterwards (`fig_sweep_throughput` reports
/// the hit rate).
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_cached(
    scenarios: &[Scenario],
    threads: usize,
    cache: &CompileCache,
) -> Result<SweepReport, RunnerError> {
    let results = SweepRunner::new(threads).map(scenarios, |_, scenario| {
        run_scenario_cached(scenario, cache)
    });
    let records = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SweepReport::from_records(records))
}

/// [`run_sweep`] with a fresh compile per grid point (the pre-cache
/// behavior): the differential reference the
/// `compile_cache_equivalence` suite and the `fig_sweep_throughput`
/// uncached baseline run against.
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_uncached(
    scenarios: &[Scenario],
    threads: usize,
) -> Result<SweepReport, RunnerError> {
    let results = SweepRunner::new(threads).map(scenarios, |_, scenario| run_scenario(scenario));
    let records = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SweepReport::from_records(records))
}
