//! Glue between the compiler and the simulator: turn a
//! [`CompiledSystem`] into a runnable [`System`] and extract the
//! evaluation metrics the paper reports.

use hisq_compiler::{Binding, BindingAction, CompiledSystem, Scheme, PORT_READOUT};
use hisq_core::NodeConfig;
use hisq_isa::CYCLE_NS;
use hisq_net::Topology;
use hisq_quantum::CoherenceParams;
use hisq_sim::{Hub, QuantumAction, QuantumBackend, SimError, SimReport, System};

/// Builds a ready-to-run [`System`] from a compiled program.
///
/// For [`Scheme::Bisp`] the topology that the circuit was compiled
/// against must be supplied (controllers, mesh links, and the router
/// tree are instantiated from it). For [`Scheme::Lockstep`] a star
/// system is built: bare controllers plus the broadcast hub.
///
/// # Errors
///
/// Returns [`SimError`] if node addresses collide (a compiler bug).
///
/// # Panics
///
/// Panics if a BISP program is built without its topology.
pub fn build_system(
    compiled: &CompiledSystem,
    topology: Option<&Topology>,
) -> Result<System, SimError> {
    let mut system = match compiled.scheme {
        Scheme::Bisp => {
            let topology = topology.expect("BISP systems need their compilation topology");
            let programs = compiled
                .programs
                .iter()
                .map(|(&addr, program)| (addr, program.insts().to_vec()))
                .collect();
            System::from_topology(topology, programs)?
        }
        Scheme::Lockstep => {
            let hub = compiled.hub.expect("lock-step systems carry a hub spec");
            let config = hisq_sim::SimConfig {
                default_classical_latency: hub.up_latency,
                ..hisq_sim::SimConfig::default()
            };
            let mut system = System::with_config(config);
            // Hub first, so a controller compiled onto the hub's address
            // surfaces as `SimError::DuplicateAddr`.
            system.add_hub(
                hub.addr,
                Hub {
                    subscribers: compiled.programs.keys().copied().collect(),
                    down_latency: hub.down_latency,
                },
            );
            for (&addr, program) in &compiled.programs {
                system.try_add_controller(
                    NodeConfig::new(addr).with_pipeline_headroom(32),
                    program.insts().to_vec(),
                )?;
            }
            system
        }
    };
    apply_bindings(
        &mut system,
        &compiled.bindings,
        compiled.durations.measurement,
    );
    Ok(system)
}

/// Installs codeword bindings into a system.
fn apply_bindings(system: &mut System, bindings: &[Binding], meas_latency: u64) {
    for binding in bindings {
        match &binding.action {
            BindingAction::Gate { gate, qubits } => system.bind(
                binding.node,
                binding.port,
                binding.codeword,
                QuantumAction::Gate {
                    gate: *gate,
                    qubits: qubits.clone(),
                },
            ),
            BindingAction::Measure { qubit } => {
                debug_assert_eq!(binding.port, PORT_READOUT);
                let _ = meas_latency; // result latency comes from SimConfig durations
                system.bind(
                    binding.node,
                    binding.port,
                    binding.codeword,
                    QuantumAction::Measure { qubit: *qubit },
                );
            }
            BindingAction::Reset { qubit } => system.bind(
                binding.node,
                binding.port,
                binding.codeword,
                QuantumAction::Reset { qubit: *qubit },
            ),
            BindingAction::Pulse => {}
        }
    }
}

/// The outcome of one compiled-and-simulated run: the simulator report
/// plus the paper's derived metrics.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Engine report (makespan, stalls, instruction counts, …).
    pub report: SimReport,
    /// End-to-end program runtime in nanoseconds.
    pub runtime_ns: u64,
    /// Circuit infidelity under the given coherence parameters
    /// (Figure 16's metric).
    pub infidelity: f64,
}

/// Compiles-in-place convenience: builds, runs, and summarizes a system.
///
/// # Errors
///
/// Propagates [`SimError`] from system construction or the run.
pub fn run_compiled(
    compiled: &CompiledSystem,
    topology: Option<&Topology>,
    backend: impl QuantumBackend + 'static,
    coherence: CoherenceParams,
) -> Result<RunMetrics, SimError> {
    let mut system = build_system(compiled, topology)?;
    system.set_backend(backend);
    let report = system.run()?;
    let runtime_ns = report.makespan_cycles * CYCLE_NS;
    let infidelity = system.exposure().infidelity(coherence);
    Ok(RunMetrics {
        report,
        runtime_ns,
        infidelity,
    })
}
