//! Small deterministic statistics helpers shared by the report
//! distillers — currently the nearest-rank percentile rule the job
//! engine's latency metrics are defined by.
//!
//! # Why nearest-rank, spelled out
//!
//! Quick-mode load reports aggregate *small* completion sets — a p99
//! over 120 jobs, or over 2 jobs in a degenerate sweep point. An
//! interpolating percentile definition returns values that are not in
//! the sample, whose bytes wobble with float rounding as the sample
//! count changes, and which are ill-defined at `n = 1`. The job
//! engine therefore uses the **nearest-rank** rule exclusively:
//!
//! > the p-th percentile of `n` sorted samples is the sample at
//! > 1-based rank `ceil(p/100 · n)`, clamped to `[1, n]`.
//!
//! Consequences worth pinning (and regression-tested below at
//! `n = 1, 2, 99, 100`):
//!
//! - every percentile is an **observed sample** (exact `u64` bytes, no
//!   interpolation, no float in the output);
//! - at `n = 1` every percentile is the one sample;
//! - at `n = 2`, p50 is the smaller sample (`ceil(0.5·2) = 1`) and
//!   p51–p100 the larger;
//! - at `n = 99`, p99 is the maximum (`ceil(0.99·99) = ceil(98.01) =
//!   99`) — below 100 samples there is no tail sample to separate p99
//!   from p100;
//! - at `n = 100`, p99 is exactly the 99th sample — the first `n`
//!   where p99 and the maximum come apart.

/// The p-th percentile of `sorted` (ascending) by the nearest-rank
/// rule: the sample at 1-based rank `ceil(p/100 · n)`, clamped to
/// `[1, n]`. Returns `None` on an empty sample set.
///
/// `p` is clamped to `[0, 100]`; `p = 0` returns the minimum (rank
/// clamps up to 1) and `p = 100` the maximum.
///
/// # Panics
///
/// Debug-asserts that `sorted` is ascending — callers sort once and
/// take every percentile from the same slice.
#[must_use]
pub fn percentile_nearest_rank(sorted: &[u64], p: f64) -> Option<u64> {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile input must be sorted ascending"
    );
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let p = p.clamp(0.0, 100.0);
    // ceil(p/100 * n) in 1-based ranks; the clamp below also absorbs
    // any float rounding at p = 100 (e.g. 100.0/100.0 * n == n exactly,
    // but a perturbed p must never index past the end).
    let rank = (p / 100.0 * n as f64).ceil() as usize;
    let rank = rank.clamp(1, n);
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_has_no_percentile() {
        assert_eq!(percentile_nearest_rank(&[], 99.0), None);
    }

    #[test]
    fn n1_every_percentile_is_the_sample() {
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_nearest_rank(&[42], p), Some(42), "p={p}");
        }
    }

    #[test]
    fn n2_p50_is_the_smaller_sample_and_p99_the_larger() {
        let s = [10, 20];
        assert_eq!(percentile_nearest_rank(&s, 50.0), Some(10));
        assert_eq!(percentile_nearest_rank(&s, 51.0), Some(20));
        assert_eq!(percentile_nearest_rank(&s, 95.0), Some(20));
        assert_eq!(percentile_nearest_rank(&s, 99.0), Some(20));
        assert_eq!(percentile_nearest_rank(&s, 100.0), Some(20));
    }

    #[test]
    fn n99_p99_is_the_maximum() {
        // ceil(0.99 · 99) = ceil(98.01) = 99: below 100 samples the
        // p99 rank rounds up to the last sample.
        let s: Vec<u64> = (1..=99).collect();
        assert_eq!(percentile_nearest_rank(&s, 99.0), Some(99));
        // p98 of 99: ceil(97.02) = 98 — one sample in from the end.
        assert_eq!(percentile_nearest_rank(&s, 98.0), Some(98));
        assert_eq!(percentile_nearest_rank(&s, 50.0), Some(50));
    }

    #[test]
    fn n100_p99_first_separates_from_the_maximum() {
        // ceil(0.99 · 100) = 99 exactly: rank 99 of 100, not the max.
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nearest_rank(&s, 99.0), Some(99));
        assert_eq!(percentile_nearest_rank(&s, 100.0), Some(100));
        assert_eq!(percentile_nearest_rank(&s, 50.0), Some(50));
        assert_eq!(percentile_nearest_rank(&s, 0.0), Some(1));
    }

    #[test]
    fn percentiles_are_always_observed_samples() {
        let s = [3, 7, 7, 9, 1000];
        for p in 0..=100 {
            let v = percentile_nearest_rank(&s, f64::from(p)).unwrap();
            assert!(s.contains(&v), "p{p} returned unobserved {v}");
        }
    }

    #[test]
    fn out_of_range_p_clamps() {
        let s = [5, 6];
        assert_eq!(percentile_nearest_rank(&s, -3.0), Some(5));
        assert_eq!(percentile_nearest_rank(&s, 250.0), Some(6));
    }
}
