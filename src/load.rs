//! The multi-tenant job engine: seeded open-loop arrival streams, a
//! bounded admission queue, and a scheduler multiplexing many compiled
//! jobs over disjoint controller partitions of one simulated machine.
//!
//! Every figure so far evaluates the control stack one program at a
//! time — one scenario owns the whole simulated machine. This module
//! models the stack as a *shared service* instead: jobs of one
//! compiled type arrive from several tenant streams (Poisson
//! interarrivals over the workspace's counter-based SplitMix64
//! streams, or trace-driven arrival lists), pass a bounded admission
//! queue, and run to completion on the first free controller
//! partition. The output is queueing-theory telemetry — throughput,
//! partition utilization, and p50/p95/p99 job latency — reported with
//! the same byte-determinism contract as every other sweep report.
//!
//! # Pipeline
//!
//! ```text
//! streams ──► merged arrivals ──► admission queue ──► partitions
//! (Poisson      (submit_ns,        (bounded FIFO       (disjoint; one
//!  / trace)      stream, seq)       per priority)       job each)
//!                     │                  │ full              │ finish
//!                     ▼                  ▼                   ▼
//!                calendar queue      rejected            completed
//!                (shared event       (counted)           (latency =
//!                 core, PR 7)                             finish−submit)
//! ```
//!
//! # Semantics, precisely
//!
//! - **Arrivals.** Each [`ArrivalStream`] generates its submit times
//!   independently: Poisson streams draw exponential gaps from a
//!   counter-based SplitMix64 stream keyed on `(scenario seed, stream
//!   index)`; trace streams list absolute submit times. The merged
//!   arrival order — and the job numbering — is
//!   `(submit_ns, stream index, per-stream sequence)`.
//! - **Admission.** An arriving job starts immediately when a
//!   partition is free (the wait queue is empty by invariant whenever
//!   a partition is free). Otherwise it joins the admission queue
//!   unless the queue already holds
//!   [`queue_capacity`](LoadSpec::queue_capacity) jobs, in which case
//!   it is **rejected** (the rejection policy is drop-newest: the
//!   arriving job is the one refused). Within a priority class the
//!   queue is FIFO; across classes, lower
//!   [`priority`](ArrivalStream::priority) values pop first.
//! - **Service.** A started job occupies exactly one partition for its
//!   whole service time. Under [`ServiceModel::Simulated`] the service
//!   time is the job's *simulated makespan*: the scenario (minus its
//!   `load` block) is compiled once per job type through the sweep's
//!   [`CompileCache`] and run per job with seed `scenario.seed + job`,
//!   so repeated job types compile once and every job's duration comes
//!   from the real event core. [`ServiceModel::Exponential`] draws a
//!   seeded exponential proxy instead (the M/M/c analytic-oracle
//!   surface, and the cheap mode for property tests).
//! - **Ties.** Same-instant events resolve in calendar-queue push
//!   order: arrivals are scheduled before the run starts, so an
//!   arrival at time `t` observes the machine *before* any completion
//!   at the same `t` — a full machine rejects it even if a partition
//!   frees that same nanosecond.
//! - **Horizon.** With [`horizon_ns`](LoadSpec::horizon_ns) set, the
//!   engine stops at the first event past the horizon; admitted jobs
//!   not yet finished are reported in-flight and partition busy time
//!   is truncated at the horizon. Without a horizon the engine drains:
//!   every admitted job completes.
//!
//! # Determinism
//!
//! Everything is a pure function of the scenario (seed included): the
//! arrival draws are counter-based, the service draws are keyed on the
//! per-job seed (never on scheduling order), the scheduler breaks
//! every tie structurally, and the latency percentiles use the
//! nearest-rank rule over exact `u64` samples
//! ([`crate::stats::percentile_nearest_rank`]) — so a load sweep's
//! JSON is byte-identical across thread counts, exactly like every
//! other report in the workspace.

use hisq_json::{Json, JsonError, ObjReader};
use hisq_quantum::noise::splitmix64;
use hisq_sim::queue::{CalendarQueue, EventQueue};
use hisq_sim::SweepRecord;
use std::collections::{BTreeMap, BTreeSet};

use crate::runner::{
    run_scenario_from_artifact, CompileCache, RunnerError, Scenario, ScenarioReport,
};
use crate::stats::percentile_nearest_rank;
use crate::testing::fnv1a64;

/// Weyl increment of the workspace's SplitMix64 streams (golden-ratio
/// constant) — used to decorrelate per-stream and per-job keys.
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
/// Domain-separation salt of the arrival-gap draws.
const ARRIVAL_SALT: u64 = 0x4a0b_5ecd_10ad_71e5;
/// Domain-separation salt of the exponential service draws.
const SERVICE_SALT: u64 = 0xd6e8_feb8_6659_fd93;

/// How one tenant stream generates job arrivals.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals: `jobs` arrivals with exponential
    /// interarrival gaps of mean `1e6 / rate_per_ms` ns, drawn from a
    /// counter-based SplitMix64 stream keyed on the scenario seed and
    /// the stream index (the first arrival is one gap after t = 0).
    Poisson {
        /// Mean arrival rate, jobs per millisecond of simulated time.
        rate_per_ms: f64,
        /// Number of arrivals the stream generates.
        jobs: u64,
    },
    /// Trace-driven arrivals: absolute submit times in nanoseconds,
    /// non-decreasing.
    Trace {
        /// Absolute submit times (ns), in non-decreasing order.
        submit_ns: Vec<u64>,
    },
}

/// One tenant's arrival stream: an arrival process plus the priority
/// class its jobs are admitted under.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalStream {
    /// How this stream's submit times are generated.
    pub process: ArrivalProcess,
    /// Priority class (lower pops first; FIFO within a class).
    pub priority: u32,
}

impl ArrivalStream {
    /// A Poisson stream at `rate_per_ms` generating `jobs` arrivals,
    /// priority 0.
    pub fn poisson(rate_per_ms: f64, jobs: u64) -> ArrivalStream {
        ArrivalStream {
            process: ArrivalProcess::Poisson { rate_per_ms, jobs },
            priority: 0,
        }
    }

    /// A trace stream over absolute submit times, priority 0.
    pub fn trace(submit_ns: Vec<u64>) -> ArrivalStream {
        ArrivalStream {
            process: ArrivalProcess::Trace { submit_ns },
            priority: 0,
        }
    }

    /// Replaces the priority class (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: u32) -> ArrivalStream {
        self.priority = priority;
        self
    }

    /// Number of arrivals this stream generates.
    pub fn jobs(&self) -> u64 {
        match &self.process {
            ArrivalProcess::Poisson { jobs, .. } => *jobs,
            ArrivalProcess::Trace { submit_ns } => submit_ns.len() as u64,
        }
    }
}

/// Where a job's service time comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceModel {
    /// Service time = the job's simulated makespan: the scenario
    /// (without its `load` block) compiled once per type via the
    /// sweep's [`CompileCache`] and run per job with seed
    /// `scenario.seed + job index`.
    Simulated,
    /// Seeded exponential service proxy with the given mean — the
    /// M/M/c analytic-oracle surface. Draws are keyed on the per-job
    /// seed, never on scheduling order.
    Exponential {
        /// Mean service time in nanoseconds.
        mean_ns: f64,
    },
}

/// The `load` block of a scenario: arrival streams, machine
/// partitioning, admission bound, and the service model. Attached as
/// [`Scenario::load`](crate::runner::Scenario::load), it switches the
/// scenario from "one program owns the machine" to the multi-tenant
/// job engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// The tenant arrival streams (at least one).
    pub streams: Vec<ArrivalStream>,
    /// Disjoint controller partitions; each runs one job at a time.
    pub partitions: u32,
    /// Admission-queue bound: an arrival finding the machine busy and
    /// the queue at capacity is rejected (drop-newest). `0` means no
    /// waiting at all — a job either starts immediately or is
    /// rejected.
    pub queue_capacity: usize,
    /// Where service times come from.
    pub service: ServiceModel,
    /// Optional hard stop (ns): events past the horizon do not run and
    /// unfinished admitted jobs are reported in-flight. `None` drains
    /// every admitted job.
    pub horizon_ns: Option<u64>,
}

impl LoadSpec {
    /// A spec over `streams` with `partitions` partitions, a
    /// 64-deep admission queue, simulated service, and no horizon.
    pub fn new(streams: Vec<ArrivalStream>, partitions: u32) -> LoadSpec {
        LoadSpec {
            streams,
            partitions,
            queue_capacity: 64,
            service: ServiceModel::Simulated,
            horizon_ns: None,
        }
    }

    /// Replaces the admission-queue bound (builder style).
    #[must_use]
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> LoadSpec {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Replaces the service model (builder style).
    #[must_use]
    pub fn with_service(mut self, service: ServiceModel) -> LoadSpec {
        self.service = service;
        self
    }

    /// Sets the horizon (builder style).
    #[must_use]
    pub fn with_horizon_ns(mut self, horizon_ns: u64) -> LoadSpec {
        self.horizon_ns = Some(horizon_ns);
        self
    }

    /// Total arrivals across every stream.
    pub fn total_jobs(&self) -> u64 {
        self.streams.iter().map(ArrivalStream::jobs).sum()
    }

    /// Structural validation (also applied by [`LoadSpec::from_json`]):
    /// at least one stream, at least one partition, positive finite
    /// rates and means, at least one job per Poisson stream, non-empty
    /// non-decreasing traces.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.streams.is_empty() {
            return Err("load needs at least one arrival stream".into());
        }
        if self.partitions == 0 {
            return Err("load needs at least one partition".into());
        }
        for (k, stream) in self.streams.iter().enumerate() {
            match &stream.process {
                ArrivalProcess::Poisson { rate_per_ms, jobs } => {
                    if !(rate_per_ms.is_finite() && *rate_per_ms > 0.0) {
                        return Err(format!(
                            "stream {k}: rate_per_ms must be positive and finite"
                        ));
                    }
                    if *jobs == 0 {
                        return Err(format!("stream {k}: a Poisson stream needs jobs >= 1"));
                    }
                }
                ArrivalProcess::Trace { submit_ns } => {
                    if submit_ns.is_empty() {
                        return Err(format!("stream {k}: a trace stream needs submit times"));
                    }
                    if submit_ns.windows(2).any(|w| w[0] > w[1]) {
                        return Err(format!(
                            "stream {k}: trace submit times must be non-decreasing"
                        ));
                    }
                }
            }
        }
        if let ServiceModel::Exponential { mean_ns } = self.service {
            if !(mean_ns.is_finite() && mean_ns > 0.0) {
                return Err("service mean_ns must be positive and finite".into());
            }
        }
        Ok(())
    }

    /// Short stable rendering for scenario-id segments:
    /// `ld.pP.qC.svc-(sim|expM)[.hH]` followed by one
    /// `.sK-(poiRATExJOBS|trcLEN-FNV8)prP` segment per stream — every
    /// field that changes the engine's behavior appears, so grid
    /// points along any load axis keep unique ids.
    pub fn id_fragment(&self) -> String {
        let mut frag = format!("ld.p{}.q{}", self.partitions, self.queue_capacity);
        match self.service {
            ServiceModel::Simulated => frag.push_str(".svc-sim"),
            ServiceModel::Exponential { mean_ns } => {
                frag.push_str(&format!(".svc-exp{mean_ns}"));
            }
        }
        if let Some(h) = self.horizon_ns {
            frag.push_str(&format!(".h{h}"));
        }
        for (k, stream) in self.streams.iter().enumerate() {
            match &stream.process {
                ArrivalProcess::Poisson { rate_per_ms, jobs } => {
                    frag.push_str(&format!(".s{k}-poi{rate_per_ms}x{jobs}"));
                }
                ArrivalProcess::Trace { submit_ns } => {
                    // Length alone would collide distinct traces; an
                    // FNV-1a digest of the times keeps ids unique.
                    let mut bytes = Vec::with_capacity(submit_ns.len() * 8);
                    for t in submit_ns {
                        bytes.extend_from_slice(&t.to_le_bytes());
                    }
                    frag.push_str(&format!(
                        ".s{k}-trc{}-{:08x}",
                        submit_ns.len(),
                        fnv1a64(&bytes) as u32
                    ));
                }
            }
            frag.push_str(&format!("pr{}", stream.priority));
        }
        frag
    }

    /// Serializes the spec for the scenario grammar (omitting an unset
    /// horizon; every other field explicit).
    pub fn to_json(&self) -> Json {
        let service = match self.service {
            ServiceModel::Simulated => Json::Object(vec![("model".into(), Json::str("simulated"))]),
            ServiceModel::Exponential { mean_ns } => Json::Object(vec![
                ("model".into(), Json::str("exponential")),
                ("mean_ns".into(), Json::float(mean_ns)),
            ]),
        };
        let streams = self
            .streams
            .iter()
            .map(|stream| {
                let mut fields = match &stream.process {
                    ArrivalProcess::Poisson { rate_per_ms, jobs } => vec![
                        ("process".into(), Json::str("poisson")),
                        ("rate_per_ms".into(), Json::float(*rate_per_ms)),
                        ("jobs".into(), (*jobs).into()),
                    ],
                    ArrivalProcess::Trace { submit_ns } => vec![
                        ("process".into(), Json::str("trace")),
                        (
                            "submit_ns".into(),
                            Json::Array(submit_ns.iter().map(|&t| t.into()).collect()),
                        ),
                    ],
                };
                fields.push(("priority".into(), u64::from(stream.priority).into()));
                Json::Object(fields)
            })
            .collect();
        let mut fields = vec![
            ("streams".into(), Json::Array(streams)),
            ("partitions".into(), u64::from(self.partitions).into()),
            ("queue_capacity".into(), self.queue_capacity.into()),
            ("service".into(), service),
        ];
        if let Some(h) = self.horizon_ns {
            fields.push(("horizon_ns".into(), h.into()));
        }
        Json::Object(fields)
    }

    /// Parses a spec serialized by [`LoadSpec::to_json`]. `streams`
    /// and `partitions` are required; `queue_capacity` defaults to 64,
    /// `service` to `{"model": "simulated"}`, and `horizon_ns` to
    /// unset.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields,
    /// wrong types, or a spec [`validate`](LoadSpec::validate) rejects.
    pub fn from_json(value: &Json, path: &str) -> Result<LoadSpec, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let streams_path = obj.field_path("streams");
        let mut streams = Vec::new();
        for (k, entry) in obj
            .required("streams")?
            .as_array(&streams_path)?
            .iter()
            .enumerate()
        {
            let entry_path = format!("{streams_path}[{k}]");
            let mut stream = ObjReader::new(entry, &entry_path)?;
            let tag_path = stream.field_path("process");
            let process = match stream.required("process")?.as_str(&tag_path)? {
                "poisson" => ArrivalProcess::Poisson {
                    rate_per_ms: stream
                        .required("rate_per_ms")?
                        .as_f64(&stream.field_path("rate_per_ms"))?,
                    jobs: stream
                        .required("jobs")?
                        .as_u64(&stream.field_path("jobs"))?,
                },
                "trace" => ArrivalProcess::Trace {
                    submit_ns: stream
                        .required("submit_ns")?
                        .as_u64_array(&stream.field_path("submit_ns"))?,
                },
                other => {
                    return Err(JsonError::decode(
                        tag_path,
                        format!(
                            "unknown arrival process \"{other}\" (expected \"poisson\" or \
                             \"trace\")"
                        ),
                    ))
                }
            };
            let priority = match stream.optional("priority") {
                Some(v) => v.as_u32(&stream.field_path("priority"))?,
                None => 0,
            };
            stream.reject_unknown()?;
            streams.push(ArrivalStream { process, priority });
        }
        let partitions = obj
            .required("partitions")?
            .as_u32(&obj.field_path("partitions"))?;
        let mut spec = LoadSpec::new(streams, partitions);
        if let Some(v) = obj.optional("queue_capacity") {
            spec.queue_capacity = v.as_usize(&obj.field_path("queue_capacity"))?;
        }
        if let Some(v) = obj.optional("service") {
            let service_path = obj.field_path("service");
            let mut service = ObjReader::new(v, &service_path)?;
            let tag_path = service.field_path("model");
            spec.service = match service.required("model")?.as_str(&tag_path)? {
                "simulated" => ServiceModel::Simulated,
                "exponential" => ServiceModel::Exponential {
                    mean_ns: service
                        .required("mean_ns")?
                        .as_f64(&service.field_path("mean_ns"))?,
                },
                other => {
                    return Err(JsonError::decode(
                        tag_path,
                        format!(
                            "unknown service model \"{other}\" (expected \"simulated\" or \
                             \"exponential\")"
                        ),
                    ))
                }
            };
            service.reject_unknown()?;
        }
        if let Some(v) = obj.optional("horizon_ns") {
            spec.horizon_ns = Some(v.as_u64(&obj.field_path("horizon_ns"))?);
        }
        obj.reject_unknown()?;
        spec.validate()
            .map_err(|message| JsonError::decode(path, message))?;
        Ok(spec)
    }
}

/// How one job left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion on `partition`.
    Completed {
        /// The partition the job occupied.
        partition: u32,
        /// When the job started service (ns).
        start_ns: u64,
        /// How long it occupied the partition (ns).
        service_ns: u64,
        /// When it finished (ns); latency = `finish_ns − submit_ns`.
        finish_ns: u64,
    },
    /// Dropped at arrival: the machine was busy and the admission
    /// queue full.
    Rejected,
    /// Admitted but not finished when the horizon stopped the engine
    /// (queued, or still running on `partition`).
    InFlight {
        /// The partition the job was running on, if it had started.
        partition: Option<u32>,
        /// When the job started service, if it had.
        start_ns: Option<u64>,
    },
}

/// The full history of one job through the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job number in merged arrival order (also the seed offset:
    /// simulated jobs run with seed `scenario.seed + job`).
    pub job: usize,
    /// Index of the stream that submitted it.
    pub stream: usize,
    /// The stream's priority class.
    pub priority: u32,
    /// Submit time (ns).
    pub submit_ns: u64,
    /// How the job left the engine.
    pub outcome: JobOutcome,
}

/// The result of one job-engine run: the per-job histories plus the
/// partition occupancy the utilization metrics are computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadOutcome {
    /// Per-job histories, in merged arrival order.
    pub jobs: Vec<JobRecord>,
    /// Number of partitions the machine was split into.
    pub partitions: u32,
    /// Busy nanoseconds per partition (truncated at the horizon).
    pub busy_ns: Vec<u64>,
    /// The engine's time span: the last completion (drained runs) or
    /// the horizon (stopped runs); 0 when nothing ran.
    pub span_ns: u64,
}

impl LoadOutcome {
    /// Arrivals the engine processed.
    pub fn submitted(&self) -> u64 {
        self.jobs.len() as u64
    }

    /// Arrivals accepted (started or queued) — never rejected.
    pub fn admitted(&self) -> u64 {
        self.submitted() - self.rejected()
    }

    /// Arrivals dropped by the admission bound.
    pub fn rejected(&self) -> u64 {
        self.count(|j| matches!(j.outcome, JobOutcome::Rejected))
    }

    /// Jobs that ran to completion.
    pub fn completed(&self) -> u64 {
        self.count(|j| matches!(j.outcome, JobOutcome::Completed { .. }))
    }

    /// Admitted jobs still queued or running at the horizon.
    pub fn in_flight(&self) -> u64 {
        self.count(|j| matches!(j.outcome, JobOutcome::InFlight { .. }))
    }

    fn count(&self, pred: impl Fn(&JobRecord) -> bool) -> u64 {
        self.jobs.iter().filter(|j| pred(j)).count() as u64
    }

    /// Sojourn times (`finish − submit`, ns) of completed jobs, sorted
    /// ascending — the sample the latency percentiles are taken from.
    pub fn latencies_sorted(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .jobs
            .iter()
            .filter_map(|j| match j.outcome {
                JobOutcome::Completed { finish_ns, .. } => Some(finish_ns - j.submit_ns),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Queueing delays (`start − submit`, ns) of completed jobs,
    /// sorted ascending.
    pub fn waits_sorted(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .jobs
            .iter()
            .filter_map(|j| match j.outcome {
                JobOutcome::Completed { start_ns, .. } => Some(start_ns - j.submit_ns),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Fraction of partition-time spent serving jobs:
    /// `Σ busy / (partitions · span)` (0 when nothing ran).
    pub fn utilization(&self) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_ns.iter().sum();
        busy as f64 / (f64::from(self.partitions) * self.span_ns as f64)
    }

    /// Distills the outcome into the flat [`SweepRecord`] metric bag
    /// the sweep engine aggregates (see the crate's metric-name
    /// conventions in [`crate::runner::run_scenario`]):
    /// `jobs_submitted`/`jobs_admitted`/`jobs_rejected`/
    /// `jobs_completed`/`jobs_in_flight` counters, `makespan_ns`
    /// (the span, so `hisq run`'s human table stays meaningful),
    /// `throughput_jobs_per_s`, `utilization`, and — when any job
    /// completed — nearest-rank `latency_p50_ns`/`latency_p95_ns`/
    /// `latency_p99_ns`, `latency_mean_ns`, and
    /// `wait_p50_ns`/`wait_p99_ns`.
    pub fn record(&self, id: String) -> SweepRecord {
        let mut record = SweepRecord::new(id)
            .with("jobs_submitted", self.submitted())
            .with("jobs_admitted", self.admitted())
            .with("jobs_rejected", self.rejected())
            .with("jobs_completed", self.completed())
            .with("jobs_in_flight", self.in_flight())
            .with("makespan_ns", self.span_ns)
            .with("utilization", self.utilization());
        let throughput = if self.span_ns == 0 {
            0.0
        } else {
            self.completed() as f64 * 1e9 / self.span_ns as f64
        };
        record.set("throughput_jobs_per_s", throughput);
        let latencies = self.latencies_sorted();
        if !latencies.is_empty() {
            for (name, p) in [
                ("latency_p50_ns", 50.0),
                ("latency_p95_ns", 95.0),
                ("latency_p99_ns", 99.0),
            ] {
                record.set(
                    name,
                    percentile_nearest_rank(&latencies, p).expect("non-empty sample"),
                );
            }
            let mean = latencies.iter().map(|&v| v as f64).sum::<f64>() / latencies.len() as f64;
            record.set("latency_mean_ns", mean);
            let waits = self.waits_sorted();
            record.set(
                "wait_p50_ns",
                percentile_nearest_rank(&waits, 50.0).expect("non-empty sample"),
            );
            record.set(
                "wait_p99_ns",
                percentile_nearest_rank(&waits, 99.0).expect("non-empty sample"),
            );
        }
        record
    }
}

/// One merged arrival before the run.
struct Arrival {
    submit_ns: u64,
    stream: usize,
    priority: u32,
}

/// Job-engine events on the shared calendar queue.
enum LoadEvent {
    /// Job `job` arrives.
    Arrive(usize),
    /// Job `job` completes on `partition`.
    Finish { job: usize, partition: u32 },
}

/// A started job's in-progress bookkeeping.
#[derive(Clone, Copy)]
struct Started {
    partition: u32,
    start_ns: u64,
    service_ns: u64,
}

/// `[0, 1)` uniform from a 64-bit draw (53-bit mantissa).
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded exponential sample with the given mean, rounded to whole
/// nanoseconds and clamped to at least 1 ns (a zero-length service or
/// gap would break start-time monotonicity proofs for free).
fn exponential_ns(draw: u64, mean_ns: f64) -> u64 {
    let sample = -mean_ns * (1.0 - unit(draw)).ln();
    sample.round().max(1.0) as u64
}

/// Generates the merged arrival list: per-stream submit times, merged
/// and numbered by `(submit_ns, stream index, per-stream sequence)`.
fn merged_arrivals(spec: &LoadSpec, seed: u64) -> Vec<Arrival> {
    let mut arrivals: Vec<(u64, usize, u64, u32)> = Vec::new();
    for (k, stream) in spec.streams.iter().enumerate() {
        match &stream.process {
            ArrivalProcess::Poisson { rate_per_ms, jobs } => {
                let mean_gap_ns = 1e6 / rate_per_ms;
                let stream_seed = splitmix64(seed ^ ARRIVAL_SALT ^ (k as u64).wrapping_mul(PHI));
                let mut t = 0u64;
                for j in 0..*jobs {
                    let draw = splitmix64(stream_seed ^ j.wrapping_mul(PHI));
                    t = t.saturating_add(exponential_ns(draw, mean_gap_ns));
                    arrivals.push((t, k, j, stream.priority));
                }
            }
            ArrivalProcess::Trace { submit_ns } => {
                for (j, &t) in submit_ns.iter().enumerate() {
                    arrivals.push((t, k, j as u64, stream.priority));
                }
            }
        }
    }
    arrivals.sort_unstable_by_key(|&(t, k, j, _)| (t, k, j));
    arrivals
        .into_iter()
        .map(|(submit_ns, stream, _, priority)| Arrival {
            submit_ns,
            stream,
            priority,
        })
        .collect()
}

/// Runs the job engine for a load scenario and returns the full
/// per-job outcome (the test surface; sweep callers go through
/// [`run_scenario`](crate::runner::run_scenario), which distills
/// [`LoadOutcome::record`]).
///
/// # Errors
///
/// [`RunnerError::Load`] when the scenario has no `load` block or the
/// spec fails [`LoadSpec::validate`]; any compile error of the job
/// type (attributed to the load scenario's id); under simulated
/// service, any run-stage [`RunnerError`] of the per-job inner runs
/// (attributed to the inner job's own scenario id).
pub fn run_load(scenario: &Scenario, cache: &CompileCache) -> Result<LoadOutcome, RunnerError> {
    let id = scenario.id();
    let spec = scenario.load.as_ref().ok_or_else(|| RunnerError::Load {
        id: id.clone(),
        message: "scenario has no load block".into(),
    })?;
    spec.validate().map_err(|message| RunnerError::Load {
        id: id.clone(),
        message,
    })?;

    // The inner job type: the scenario without its load block. It
    // compiles exactly once — a single cache consult per load run, on
    // the same `CompileKey` as the outer scenario (the load block is
    // run-stage) — and every simulated job runs from the shared
    // artifact with its own seed. Exponential-service runs resolve the
    // artifact too: one consult per grid point regardless of service
    // model, and an uncompilable workload fails up front instead of
    // only when a job would start.
    let mut job_type = scenario.clone();
    job_type.load = None;
    let artifact = cache
        .get_or_compile(&job_type)
        .map_err(|e| e.with_id(&id))?;

    let arrivals = merged_arrivals(spec, scenario.seed);
    let n = arrivals.len();

    // Per-job service time, a pure function of (scenario, job index) —
    // never of scheduling order.
    let service_of = |job: usize| -> Result<u64, RunnerError> {
        let job_seed = scenario.seed.wrapping_add(job as u64);
        match spec.service {
            ServiceModel::Exponential { mean_ns } => {
                let draw = splitmix64(job_seed.wrapping_mul(PHI) ^ SERVICE_SALT);
                Ok(exponential_ns(draw, mean_ns))
            }
            ServiceModel::Simulated => {
                let mut inner = job_type.clone();
                inner.seed = job_seed;
                let record = run_scenario_from_artifact(&inner, artifact.clone())?;
                record
                    .counter("makespan_ns")
                    .ok_or_else(|| RunnerError::Load {
                        id: id.clone(),
                        message: format!("job {job}: inner run reported no makespan"),
                    })
            }
        }
    };

    let mut events: CalendarQueue<LoadEvent> = CalendarQueue::new();
    for (job, arrival) in arrivals.iter().enumerate() {
        events.push(arrival.submit_ns, LoadEvent::Arrive(job));
    }

    let mut free: BTreeSet<u32> = (0..spec.partitions).collect();
    // The admission queue: pops ascending (priority, job). Job numbers
    // are monotone in arrival order, so within a priority class this
    // is exactly FIFO.
    let mut waiting: BTreeMap<(u32, usize), usize> = BTreeMap::new();
    let mut started: Vec<Option<Started>> = vec![None; n];
    let mut finished: Vec<Option<u64>> = vec![None; n];
    let mut rejected: Vec<bool> = vec![false; n];
    let mut busy_ns: Vec<u64> = vec![0; spec.partitions as usize];
    let mut last_finish_ns = 0u64;

    let start = |job: usize,
                 now: u64,
                 free: &mut BTreeSet<u32>,
                 started: &mut Vec<Option<Started>>,
                 events: &mut CalendarQueue<LoadEvent>|
     -> Result<(), RunnerError> {
        let partition = *free.iter().next().expect("a free partition");
        free.remove(&partition);
        let service_ns = service_of(job)?;
        started[job] = Some(Started {
            partition,
            start_ns: now,
            service_ns,
        });
        events.push(
            now.saturating_add(service_ns),
            LoadEvent::Finish { job, partition },
        );
        Ok(())
    };

    let stopped_at = loop {
        let Some(at) = events.next_at() else {
            break None;
        };
        if let Some(horizon) = spec.horizon_ns {
            if at > horizon {
                break Some(horizon);
            }
        }
        let (now, event) = events.pop().expect("peeked event");
        match event {
            LoadEvent::Arrive(job) => {
                if !free.is_empty() {
                    // Invariant: a free partition implies an empty
                    // waiting queue (completions refill eagerly), so
                    // the arrival starts immediately.
                    debug_assert!(waiting.is_empty());
                    start(job, now, &mut free, &mut started, &mut events)?;
                } else if waiting.len() < spec.queue_capacity {
                    waiting.insert((arrivals[job].priority, job), job);
                } else {
                    rejected[job] = true;
                }
            }
            LoadEvent::Finish { job, partition } => {
                finished[job] = Some(now);
                last_finish_ns = last_finish_ns.max(now);
                busy_ns[partition as usize] +=
                    now - started[job].expect("finished job started").start_ns;
                free.insert(partition);
                if let Some((&key, _)) = waiting.iter().next() {
                    let next = waiting.remove(&key).expect("peeked entry");
                    start(next, now, &mut free, &mut started, &mut events)?;
                }
            }
        }
    };

    let span_ns = match stopped_at {
        Some(horizon) => {
            // Truncate the busy time of still-running jobs at the
            // horizon.
            for job in 0..n {
                if let (Some(s), None) = (started[job], finished[job]) {
                    busy_ns[s.partition as usize] += horizon - s.start_ns;
                }
            }
            horizon
        }
        None => last_finish_ns,
    };

    let jobs = arrivals
        .iter()
        .enumerate()
        .map(|(job, arrival)| {
            let outcome = if rejected[job] {
                JobOutcome::Rejected
            } else {
                match (started[job], finished[job]) {
                    (Some(s), Some(finish_ns)) => JobOutcome::Completed {
                        partition: s.partition,
                        start_ns: s.start_ns,
                        service_ns: s.service_ns,
                        finish_ns,
                    },
                    (s, None) => JobOutcome::InFlight {
                        partition: s.map(|s| s.partition),
                        start_ns: s.map(|s| s.start_ns),
                    },
                    (None, Some(_)) => unreachable!("job finished without starting"),
                }
            };
            JobRecord {
                job,
                stream: arrival.stream,
                priority: arrival.priority,
                submit_ns: arrival.submit_ns,
                outcome,
            }
        })
        .collect();

    Ok(LoadOutcome {
        jobs,
        partitions: spec.partitions,
        busy_ns,
        span_ns,
    })
}

/// [`run_load`] distilled into the sweep record
/// [`run_scenario`](crate::runner::run_scenario) returns for load
/// scenarios.
///
/// # Errors
///
/// As [`run_load`].
pub fn load_record(
    scenario: &Scenario,
    cache: &CompileCache,
) -> Result<ScenarioReport, RunnerError> {
    Ok(run_load(scenario, cache)?.record(scenario.id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scenario;
    use hisq_compiler::Scheme;
    use hisq_workloads::WorkloadSpec;

    fn exp_scenario(spec: LoadSpec) -> Scenario {
        let mut scenario = Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp);
        scenario.load = Some(spec);
        scenario
    }

    #[test]
    fn empty_machine_serves_every_job_with_zero_wait() {
        let spec = LoadSpec::new(vec![ArrivalStream::trace(vec![0, 1_000_000, 2_000_000])], 2)
            .with_service(ServiceModel::Exponential { mean_ns: 10_000.0 });
        let outcome = run_load(&exp_scenario(spec), &CompileCache::new()).unwrap();
        assert_eq!(outcome.completed(), 3);
        assert_eq!(outcome.rejected(), 0);
        assert!(outcome.waits_sorted().iter().all(|&w| w == 0));
    }

    #[test]
    fn zero_capacity_queue_rejects_overlapping_arrivals() {
        // Two arrivals at t=0 onto one partition with no queue: the
        // second is rejected (drop-newest).
        let spec = LoadSpec::new(vec![ArrivalStream::trace(vec![0, 0])], 1)
            .with_queue_capacity(0)
            .with_service(ServiceModel::Exponential { mean_ns: 50_000.0 });
        let outcome = run_load(&exp_scenario(spec), &CompileCache::new()).unwrap();
        assert_eq!(outcome.completed(), 1);
        assert_eq!(outcome.rejected(), 1);
        assert_eq!(outcome.jobs[1].outcome, JobOutcome::Rejected);
    }

    #[test]
    fn lower_priority_value_pops_first_between_classes() {
        // One partition busy with the t=0 job; a batch (priority 1)
        // job arrives before an interactive (priority 0) job, but the
        // interactive one starts first once the partition frees.
        let spec = LoadSpec::new(
            vec![
                ArrivalStream::trace(vec![0, 10]).with_priority(1),
                ArrivalStream::trace(vec![20]).with_priority(0),
            ],
            1,
        )
        .with_service(ServiceModel::Exponential { mean_ns: 500_000.0 });
        let outcome = run_load(&exp_scenario(spec), &CompileCache::new()).unwrap();
        let start_of = |job: usize| match outcome.jobs[job].outcome {
            JobOutcome::Completed { start_ns, .. } => start_ns,
            ref other => panic!("job {job} did not complete: {other:?}"),
        };
        // Merged order: job0 = t0 (batch), job1 = t10 (batch),
        // job2 = t20 (interactive). Job 2 must start before job 1.
        assert!(start_of(2) < start_of(1));
    }

    #[test]
    fn horizon_reports_in_flight_jobs() {
        let spec = LoadSpec::new(vec![ArrivalStream::trace(vec![0, 0, 0])], 1)
            .with_service(ServiceModel::Exponential { mean_ns: 1e9 })
            .with_horizon_ns(1_000);
        let outcome = run_load(&exp_scenario(spec), &CompileCache::new()).unwrap();
        assert_eq!(outcome.completed(), 0);
        assert_eq!(outcome.in_flight(), 3);
        assert_eq!(outcome.span_ns, 1_000);
        // The running job's busy time is truncated at the horizon.
        assert_eq!(outcome.busy_ns, vec![1_000]);
    }

    #[test]
    fn load_spec_round_trips_through_json() {
        let spec = LoadSpec::new(
            vec![
                ArrivalStream::poisson(2.5, 100),
                ArrivalStream::trace(vec![5, 10, 10]).with_priority(3),
            ],
            4,
        )
        .with_queue_capacity(16)
        .with_service(ServiceModel::Exponential { mean_ns: 60_000.0 })
        .with_horizon_ns(5_000_000);
        let text = spec.to_json().to_string_pretty();
        let parsed = LoadSpec::from_json(&Json::parse(&text).unwrap(), "load").unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn malformed_load_specs_name_their_paths() {
        for (text, needle) in [
            (
                r#"{"streams": [], "partitions": 2}"#,
                "at least one arrival stream",
            ),
            (
                r#"{"streams": [{"process": "poisson", "rate_per_ms": 1.0, "jobs": 5}],
                    "partitions": 0}"#,
                "at least one partition",
            ),
            (
                r#"{"streams": [{"process": "poisson", "rate_per_ms": 0.0, "jobs": 5}],
                    "partitions": 2}"#,
                "rate_per_ms must be positive",
            ),
            (
                r#"{"streams": [{"process": "trace", "submit_ns": [5, 3]}],
                    "partitions": 2}"#,
                "non-decreasing",
            ),
            (
                r#"{"streams": [{"process": "drizzle"}], "partitions": 2}"#,
                "unknown arrival process",
            ),
            (
                r#"{"streams": [{"process": "poisson", "rate_per_ms": 1.0, "jobs": 5,
                    "tenant": "a"}], "partitions": 2}"#,
                "unknown field `tenant`",
            ),
            (
                r#"{"streams": [{"process": "poisson", "rate_per_ms": 1.0, "jobs": 5}],
                    "partitions": 2, "service": {"model": "quadratic"}}"#,
                "unknown service model",
            ),
        ] {
            let err = LoadSpec::from_json(&Json::parse(text).unwrap(), "load").unwrap_err();
            assert!(err.to_string().contains(needle), "{text}\n-> {err}");
        }
    }

    #[test]
    fn id_fragment_distinguishes_distinct_traces() {
        let a = LoadSpec::new(vec![ArrivalStream::trace(vec![1, 2, 3])], 2);
        let b = LoadSpec::new(vec![ArrivalStream::trace(vec![1, 2, 4])], 2);
        assert_ne!(a.id_fragment(), b.id_fragment());
    }

    #[test]
    fn poisson_arrivals_replay_and_track_their_rate() {
        let spec = LoadSpec::new(vec![ArrivalStream::poisson(2.0, 4_000)], 1);
        let a = merged_arrivals(&spec, 7);
        let b = merged_arrivals(&spec, 7);
        assert_eq!(a.len(), 4_000);
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.submit_ns == y.submit_ns),
            "same seed replays"
        );
        let c = merged_arrivals(&spec, 8);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.submit_ns != y.submit_ns),
            "different seeds differ"
        );
        // Mean gap ≈ 1e6/2 ns = 0.5 ms; 4k samples pin it within 5%.
        let mean_gap = a.last().unwrap().submit_ns as f64 / a.len() as f64;
        assert!(
            (mean_gap - 500_000.0).abs() < 25_000.0,
            "mean gap {mean_gap} off the 500000 ns target"
        );
    }
}
