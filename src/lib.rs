//! # Distributed-HISQ
//!
//! A reproduction of *"Distributed-HISQ: A Distributed Quantum Control
//! Architecture"* (MICRO 2025) as a pure-Rust library suite.
//!
//! This facade crate re-exports every subsystem of the reproduction:
//!
//! - [`isa`] — the HISQ hardware instruction set (RV32I extension with
//!   `cw`/`wait`/`sync`/`send`/`recv`), assembler and disassembler.
//! - [`core`] — the single-node HISQ microarchitecture: classical pipeline,
//!   Timing Control Unit (TCU), Synchronization Unit (SyncU) implementing the
//!   BISP booking protocol, and Message Unit (MsgU).
//! - [`net`] — the hybrid network substrate: mesh intra-layer links between
//!   neighbouring controllers and a balanced-tree router hierarchy for
//!   region-level synchronization.
//! - [`sim`] — CACTUS-Light-style transaction-level distributed simulator
//!   driving many controllers, routers, and the analog front-end.
//! - [`quantum`] — dynamic-circuit IR plus state-vector and stabilizer
//!   simulators and a T1/T2 fidelity model.
//! - [`analog`] — pulse synthesis (NCO/DAC/envelope), readout demodulation,
//!   and a two-level qubit physics model used for the calibration
//!   experiments of Figure 11.
//! - [`compiler`] — the software stack lowering dynamic circuits to per-
//!   controller HISQ binaries, with both the BISP scheme and the baseline
//!   lock-step scheme of the paper's evaluation.
//! - [`workloads`] — generators for the paper's benchmark suite (adder,
//!   Bernstein–Vazirani, QFT, W-state, logical-T QEC circuits).
//!
//! # Quickstart
//!
//! ```
//! use distributed_hisq::isa::Assembler;
//!
//! let program = Assembler::new()
//!     .assemble(
//!         "addi x1, x0, 40\n\
//!          waitr x1\n\
//!          cw.i.i 3, 1\n\
//!          sync 2\n",
//!     )
//!     .expect("valid HISQ assembly");
//! assert_eq!(program.len(), 4);
//! ```

//! The [`runner`] module is the facade-level experiment harness: it
//! glues the compiler to the simulator ([`runner::build_system`]) and
//! drives whole parameter sweeps end to end — compile → place →
//! simulate → aggregate — via [`runner::Scenario`] and
//! [`runner::run_sweep`] on the [`sim::sweep`] worker pool.
//!
//! The [`scenario`] module is the same harness as *files*: versioned
//! JSON documents describing a base scenario plus sweep axes, executed
//! by the `hisq run` binary and replayed byte-for-byte in CI.
//!
//! The [`load`] module is the multi-tenant job engine on top of the
//! runner: seeded open-loop arrival streams, a bounded admission
//! queue, and a scheduler multiplexing compiled jobs over disjoint
//! controller partitions — attached to a scenario as its `load` block.
//! [`stats`] holds the deterministic statistics helpers (nearest-rank
//! percentiles) its reports are defined by.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod load;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod testing;

pub use hisq_analog as analog;
pub use hisq_compiler as compiler;
pub use hisq_core as core;
pub use hisq_isa as isa;
pub use hisq_net as net;
pub use hisq_quantum as quantum;
pub use hisq_sim as sim;
pub use hisq_workloads as workloads;
