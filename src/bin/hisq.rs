//! `hisq` — run and validate scenario files.
//!
//! ```text
//! hisq run <scenario.json> [--repetitions N] [--threads T] [--json]
//! hisq validate <scenario.json>
//! ```
//!
//! `run` expands the scenario file into its sweep grid (see
//! `docs/SCENARIOS.md`), executes it on the deterministic worker pool,
//! and prints either a human summary or (`--json`) the raw sweep
//! report — byte-identical for any `--threads` value, which is what
//! the golden-corpus CI gate replays. `validate` parses and expands
//! the file without running anything, printing the scenario ids.
//!
//! Unknown flags and malformed inputs exit nonzero with a usage
//! message; nothing is silently ignored.

use std::process::ExitCode;

use distributed_hisq::runner::run_sweep;
use distributed_hisq::scenario::ScenarioFile;

const USAGE: &str = "\
usage: hisq <command> [options]

commands:
  run <scenario.json>       expand and execute a scenario file
  validate <scenario.json>  parse and expand a scenario file, print its grid

options (run):
  --repetitions N   override the file's repetition count (default: the file's)
  --threads T       worker threads (default 1; output is identical for any T)
  --json            print the raw sweep report as JSON
  --quick           smoke pass: one repetition, single-shot scenarios,
                    collapsed grid points deduplicated (conflicts with
                    --repetitions)

options (validate):
  (none)

The scenario-file grammar is documented in docs/SCENARIOS.md.";

fn fail(message: &str) -> ExitCode {
    eprintln!("hisq: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

struct RunArgs {
    file: String,
    repetitions: Option<u64>,
    threads: usize,
    json: bool,
    quick: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut file = None;
    let mut repetitions = None;
    let mut threads = 1usize;
    let mut json = false;
    let mut quick = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--repetitions" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--repetitions needs a value".to_string())?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --repetitions value `{value}`"))?;
                if n == 0 {
                    return Err("--repetitions must be at least 1".to_string());
                }
                repetitions = Some(n);
            }
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--threads needs a value".to_string())?;
                threads = value
                    .parse()
                    .map_err(|_| format!("invalid --threads value `{value}`"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--json" => json = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            positional => {
                if file.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected extra argument `{positional}`"));
                }
            }
        }
    }
    let file = file.ok_or_else(|| "missing scenario file".to_string())?;
    if quick && repetitions.is_some() {
        return Err("--quick conflicts with --repetitions".to_string());
    }
    Ok(RunArgs {
        file,
        repetitions,
        threads,
        json,
        quick,
    })
}

fn load(path: &str) -> Result<ScenarioFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ScenarioFile::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let args = match parse_run_args(args) {
        Ok(args) => args,
        Err(message) => return fail(&message),
    };
    let file = match load(&args.file) {
        Ok(file) => file,
        Err(message) => {
            eprintln!("hisq: {message}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios = if args.quick {
        file.expand_quick()
    } else {
        file.expand(args.repetitions)
    };
    eprintln!(
        "[hisq] {}: {} scenario(s) on {} thread(s)...",
        file.name,
        scenarios.len(),
        args.threads
    );
    let report = match run_sweep(&scenarios, args.threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("hisq: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.json {
        println!("{}", report.to_json());
        return ExitCode::SUCCESS;
    }
    println!("{}: {} scenario(s)", file.name, report.records().len());
    if !file.description.is_empty() {
        println!("  {}", file.description);
    }
    println!("{:-<78}", "");
    for record in report.records() {
        let makespan = match record.metrics.get("makespan_ns") {
            Some(distributed_hisq::sim::Metric::U64(ns)) => format!("{ns:>12}"),
            _ => format!("{:>12}", "-"),
        };
        println!("{makespan} ns  {}", record.id);
    }
    println!("{:-<78}", "");
    ExitCode::SUCCESS
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail(if args.is_empty() {
            "missing scenario file"
        } else {
            "validate takes exactly one scenario file"
        });
    };
    let file = match load(path) {
        Ok(file) => file,
        Err(message) => {
            eprintln!("hisq: {message}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios = file.expand(None);
    println!(
        "{}: ok ({} grid point(s) x {} repetition(s) = {} scenario(s))",
        file.name,
        file.grid_len(),
        file.repetitions,
        scenarios.len()
    );
    for scenario in &scenarios {
        println!("  {}", scenario.id());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((command, rest)) => match command.as_str() {
            "run" => cmd_run(rest),
            "validate" => cmd_validate(rest),
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                ExitCode::SUCCESS
            }
            other => fail(&format!("unknown command `{other}`")),
        },
        None => fail("missing command"),
    }
}
