//! Shared test-support utilities: the dependency-free FNV-1a byte pin
//! the determinism suites (`tests/sweep_determinism.rs`,
//! `tests/noise_determinism.rs`, and the bench crate's contention and
//! scale determinism tests) use to freeze report JSON byte-for-byte.
//!
//! Pinning lives in one place so engine work that legitimately changes
//! report bytes (it should not — the sweep contract is byte identity)
//! has exactly one helper to re-pin against, and every pin failure
//! prints the replacement values.

/// FNV-1a 64 over `data` — the workspace's standard dependency-free
/// byte digest for pinning report JSON in tests.
#[must_use]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Asserts `json` matches a committed `(length, FNV-1a 64)` pin,
/// naming `label` and printing the replacement pin values on drift so
/// an intentional re-pin is a copy-paste.
///
/// # Panics
///
/// Panics when either the byte length or the digest differs from the
/// pinned values.
pub fn assert_pinned(label: &str, json: &str, pinned_len: usize, pinned_fnv: u64) {
    let len = json.len();
    let fnv = fnv1a64(json.as_bytes());
    assert!(
        len == pinned_len && fnv == pinned_fnv,
        "{label} drifted from its byte pin:\n  pinned  len {pinned_len}, fnv 0x{pinned_fnv:016x}\n  actual  len {len}, fnv 0x{fnv:016x}\nif the change is intentional, re-pin with the actual values"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn assert_pinned_accepts_matching_pin() {
        assert_pinned("vector", "foobar", 6, 0x8594_4171_f739_67e8);
    }

    #[test]
    #[should_panic(expected = "drifted from its byte pin")]
    fn assert_pinned_rejects_drift() {
        assert_pinned("vector", "foobarX", 6, 0x8594_4171_f739_67e8);
    }
}
