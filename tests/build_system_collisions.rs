//! Smoke tests for the documented [`RunnerError`] path of
//! `runner::build_system`: a compiled system whose program map collides
//! with an infrastructure address (router for BISP, broadcast hub for
//! lock-step) must be rejected, not silently mis-wired — such a
//! collision is always a compiler bug.

use distributed_hisq::compiler::{
    compile_bisp, compile_lockstep, BispOptions, LockstepOptions, Scheme,
};
use distributed_hisq::quantum::Circuit;
use distributed_hisq::runner::{build_system, RunnerError};
use distributed_hisq::sim::SimError;
use hisq_net::TopologyBuilder;

/// A minimal two-qubit circuit touching both controllers.
fn circuit() -> Circuit {
    let mut c = Circuit::new(2, 2);
    c.h(0);
    c.cx(0, 1);
    c.measure(0, 0);
    c.measure(1, 1);
    c
}

#[test]
fn bisp_rejects_program_at_router_address() {
    let topo = TopologyBuilder::linear(2)
        .neighbor_latency(5)
        .router_latency(10)
        .build();
    let mut compiled = compile_bisp(&circuit(), &topo, &BispOptions::default()).unwrap();
    assert_eq!(compiled.scheme, Scheme::Bisp);

    let router = topo.root_router().expect("linear(2) has a router tree");
    let stray = compiled.programs.values().next().unwrap().clone();
    compiled.programs.insert(router, stray);

    let err = build_system(&compiled, Some(&topo)).unwrap_err();
    assert_eq!(
        err,
        RunnerError::Sim {
            id: String::new(),
            source: SimError::DuplicateAddr(router)
        }
    );
}

#[test]
fn lockstep_rejects_program_at_hub_address() {
    let mut compiled = compile_lockstep(&circuit(), &LockstepOptions::default()).unwrap();
    assert_eq!(compiled.scheme, Scheme::Lockstep);

    let hub = compiled.hub.expect("lock-step systems carry a hub spec");
    let stray = compiled.programs.values().next().unwrap().clone();
    compiled.programs.insert(hub.addr, stray);

    let err = build_system(&compiled, None).unwrap_err();
    assert_eq!(
        err,
        RunnerError::Sim {
            id: String::new(),
            source: SimError::DuplicateAddr(hub.addr)
        }
    );
}

#[test]
fn collision_free_systems_still_build() {
    let topo = TopologyBuilder::linear(2)
        .neighbor_latency(5)
        .router_latency(10)
        .build();
    let bisp = compile_bisp(&circuit(), &topo, &BispOptions::default()).unwrap();
    assert!(build_system(&bisp, Some(&topo)).is_ok());

    let lockstep = compile_lockstep(&circuit(), &LockstepOptions::default()).unwrap();
    assert!(build_system(&lockstep, None).is_ok());
}
