//! End-to-end differential oracle over real golden-corpus scenarios:
//! the engine's pop sequence under the retained `BinaryHeap` reference
//! queue is captured as a `(cycle, fingerprint)` trace, and the
//! production calendar queue must replay it exactly — event for event,
//! in order. This guards the FIFO-within-cycle `seq` contract end to
//! end, through routing, contention, retransmission, and measurement
//! resolution, not just at the queue-API level
//! (`crates/hisq-sim/tests/queue_equivalence.rs` covers that).

use distributed_hisq::runner::{scenario_system, Scenario};
use distributed_hisq::scenario::ScenarioFile;

/// Expands a committed scenario file into its scenario list.
fn corpus(text: &str) -> Vec<Scenario> {
    ScenarioFile::parse(text)
        .expect("committed corpus files parse")
        .expand(None)
}

/// One `(cycle, fingerprint)` pop trace.
type Trace = Vec<(u64, u64)>;

/// Runs `scenario` once under the heap reference queue and once under
/// the calendar queue, returning both pop traces.
fn traces(scenario: &Scenario) -> (Trace, Trace) {
    let mut reference = scenario_system(scenario).expect("corpus scenario builds");
    reference.use_reference_queue();
    reference.record_event_trace();
    reference.run().expect("corpus scenario runs (reference)");

    let mut wheel = scenario_system(scenario).expect("corpus scenario builds");
    wheel.record_event_trace();
    wheel.run().expect("corpus scenario runs (wheel)");

    (
        reference.event_trace().to_vec(),
        wheel.event_trace().to_vec(),
    )
}

/// Asserts the wheel replays the reference trace exactly for every
/// scenario of the file, and that the traces actually carried events.
fn assert_file_replays(name: &str, text: &str) {
    let scenarios = corpus(text);
    assert!(!scenarios.is_empty(), "{name}: corpus expands to scenarios");
    let mut events = 0usize;
    for scenario in &scenarios {
        let (reference, wheel) = traces(scenario);
        assert_eq!(
            reference,
            wheel,
            "{name}: scenario {} popped a different event order under \
             the calendar queue",
            scenario.id()
        );
        events += reference.len();
    }
    assert!(events > 0, "{name}: traces must carry events");
}

#[test]
fn bisp_vs_lockstep_corpus_replays_exactly() {
    assert_file_replays(
        "bisp_vs_lockstep",
        include_str!("../scenarios/bisp_vs_lockstep.json"),
    );
}

#[test]
fn contended_links_corpus_replays_exactly() {
    assert_file_replays(
        "contended_links",
        include_str!("../scenarios/contended_links.json"),
    );
}

#[test]
fn noisy_backends_corpus_replays_exactly() {
    assert_file_replays(
        "noisy_backends",
        include_str!("../scenarios/noisy_backends.json"),
    );
}
