//! CLI-contract regression tests for the `hisq` binary, run against
//! the real executable (`CARGO_BIN_EXE_hisq`): unknown flags and flag
//! conflicts must exit 2 with a usage message — never run a sweep with
//! a silently ignored option — and `--quick` must execute the reduced
//! grid successfully.

use std::process::Command;

/// Workspace-root path of a committed golden-corpus scenario file.
const SCENARIO: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/scenarios/bisp_vs_lockstep.json"
);

fn hisq(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hisq"))
        .args(args)
        .output()
        .expect("hisq binary runs")
}

#[test]
fn unknown_run_flag_exits_2_with_usage() {
    let out = hisq(&["run", SCENARIO, "--turbo"]);
    assert_eq!(out.status.code(), Some(2), "unknown flags are an error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag `--turbo`"), "{stderr}");
    assert!(stderr.contains("usage: hisq"), "{stderr}");
    assert!(
        out.stdout.is_empty(),
        "a rejected invocation must not produce a report"
    );
}

#[test]
fn quick_conflicts_with_repetitions() {
    let out = hisq(&["run", SCENARIO, "--quick", "--repetitions", "2"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--quick conflicts with --repetitions"),
        "{stderr}"
    );
}

#[test]
fn quick_run_executes_the_reduced_grid() {
    let out = hisq(&["run", SCENARIO, "--quick", "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The quick pass of the 2×2 corpus grid is the grid itself (it is
    // already single-shot, single-repetition).
    assert!(stdout.starts_with("{\"scenarios\":4,"), "{stdout}");
}
