//! CI determinism guards for the noise-aware sweep path: under any
//! backend seed, a noisy sweep's aggregate JSON is byte-identical
//! across worker-thread counts (channel sampling is counter-based
//! SplitMix64, so draws depend only on the seed and the schedule —
//! never on worker interleaving), and noisy scenario ids stay unique
//! along the noise axis.

use proptest::prelude::*;

use distributed_hisq::compiler::Scheme;
use distributed_hisq::quantum::NoiseModel;
use distributed_hisq::runner::{run_sweep, Scenario, SystemParams};
use distributed_hisq::sim::SweepGrid;
use distributed_hisq::workloads::WorkloadSpec;

/// A small noisy grid: one long-range CNOT gadget under both schemes
/// at two gate-error points (scheme fastest) — 4 scenarios, enough to
/// exercise the Leaky backend, the noise metrics, and the pairing.
fn noisy_grid(seed: u64) -> Vec<Scenario> {
    let workload = WorkloadSpec::LongRangeCnots {
        parallel: 1,
        span: 3,
    };
    SweepGrid::new(Scenario::new(workload, Scheme::Bisp).with_seed(seed))
        .axis([1e-4, 1e-2], |s, &p| {
            s.params = SystemParams {
                noise: NoiseModel::default()
                    .with_gate_errors(p, 10.0 * p)
                    .with_meas_error(10.0 * p)
                    .with_idle_error(1e-6)
                    .with_leak(p),
                ..SystemParams::default()
            }
        })
        .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
            s.scheme = scheme
        })
        .into_points()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed ⇒ identical noisy-sweep JSON on 1 vs 3 worker
    /// threads, and every record carries the noise metrics.
    #[test]
    fn noisy_sweep_json_is_byte_identical_across_thread_counts(seed in 0u64..10_000) {
        let scenarios = noisy_grid(seed);
        let single = run_sweep(&scenarios, 1).expect("grid runs").to_json();
        let multi = run_sweep(&scenarios, 3).expect("grid runs");
        prop_assert_eq!(&single, &multi.to_json());
        for record in multi.records() {
            prop_assert!(record.value("noise_infidelity").is_some());
            prop_assert_eq!(record.value("all_halted"), Some(1.0));
        }
    }
}

/// The noisy-sweep JSON at a fixed seed is additionally pinned
/// byte-for-byte (shared-helper pin; see
/// `distributed_hisq::testing::assert_pinned`), so engine-internal
/// work — e.g. the calendar-queue event core — cannot drift noisy
/// reports even in ways that stay thread-count-stable.
#[test]
fn noisy_sweep_json_is_pinned_byte_for_byte() {
    let json = run_sweep(&noisy_grid(15), 2).expect("grid runs").to_json();
    distributed_hisq::testing::assert_pinned(
        "noisy quick JSON",
        &json,
        2335,
        0x16e7_e333_388a_8bfc,
    );
}

#[test]
fn noisy_scenario_ids_are_unique_along_the_noise_axis() {
    let scenarios = noisy_grid(1);
    let mut ids: Vec<String> = scenarios.iter().map(Scenario::id).collect();
    for id in &ids {
        assert!(
            id.contains("/p1q"),
            "noisy ids carry the noise segment: {id}"
        );
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        scenarios.len(),
        "noise axis must keep ids unique"
    );
}

#[test]
fn noiseless_scenario_ids_and_records_are_unchanged() {
    // The noise extension must not leak into default scenarios: ids
    // keep their historical form and records carry no noise metrics.
    let scenario = Scenario::new(
        WorkloadSpec::LongRangeCnots {
            parallel: 1,
            span: 3,
        },
        Scheme::Bisp,
    );
    assert_eq!(scenario.id(), "lr_cnot_p1_s3/bisp/seed1/t300");
    let report = run_sweep(&[scenario], 1).expect("runs");
    let record = &report.records()[0];
    assert!(record.value("noise_infidelity").is_none());
    assert!(record.value("gates_1q").is_none());
}
