//! End-to-end integration: dynamic circuit → compiler → per-controller
//! HISQ binaries → distributed simulation → quantum backend, across the
//! whole workspace.

use std::collections::BTreeMap;

use distributed_hisq::compiler::{
    compile_bisp, compile_lockstep, map_to_physical, BispOptions, LockstepOptions, LongRangeConfig,
    Scheme,
};
use distributed_hisq::quantum::{Circuit, Condition};
use distributed_hisq::runner::build_system;
use distributed_hisq::sim::{StabilizerBackend, StateVectorBackend};
use distributed_hisq::workloads::{fig15_suite, SuiteScale};
use hisq_net::TopologyBuilder;

fn linear(n: usize) -> hisq_net::Topology {
    TopologyBuilder::linear(n)
        .neighbor_latency(5)
        .router_latency(10)
        .build()
}

/// Teleport |1⟩ from qubit 0 to qubit 2 through the full stack: the
/// corrections are real feedback crossing controllers.
fn teleport_circuit() -> Circuit {
    let mut c = Circuit::new(3, 3);
    c.x(0); // state to teleport
    c.h(1);
    c.cx(1, 2);
    c.cx(0, 1);
    c.h(0);
    c.measure(0, 0);
    c.measure(1, 1);
    c.x_if(2, Condition::bit(1, true));
    c.z_if(2, Condition::bit(0, true));
    c.measure(2, 2); // verification readout
    c
}

#[test]
fn teleportation_through_bisp_stack() {
    let topo = linear(3);
    let compiled = compile_bisp(&teleport_circuit(), &topo, &BispOptions::default()).unwrap();
    assert_eq!(compiled.scheme, Scheme::Bisp);

    for seed in 0..10 {
        let mut system = build_system(&compiled, Some(&topo)).unwrap();
        system.set_backend(StabilizerBackend::new(3, seed));
        let report = system.run().unwrap();
        assert!(report.all_halted, "seed {seed}: {:?}", report.blocked);
        assert_eq!(report.causality_warnings, 0);
        // The verification measurement lands in controller 2's t0.
        let t0 = hisq_isa::Reg::parse("t0").unwrap();
        assert_eq!(
            system.controller(2).unwrap().reg(t0),
            1,
            "seed {seed}: teleported |1> must measure 1"
        );
    }
}

#[test]
fn teleportation_through_lockstep_stack() {
    let compiled = compile_lockstep(&teleport_circuit(), &LockstepOptions::default()).unwrap();
    assert_eq!(compiled.scheme, Scheme::Lockstep);

    for seed in 0..10 {
        let mut system = build_system(&compiled, None).unwrap();
        system.set_backend(StabilizerBackend::new(3, 100 + seed));
        let report = system.run().unwrap();
        assert!(report.all_halted, "seed {seed}: {:?}", report.blocked);
        let t0 = hisq_isa::Reg::parse("t0").unwrap();
        assert_eq!(system.controller(2).unwrap().reg(t0), 1, "seed {seed}");
    }
}

#[test]
fn long_range_cnot_gadget_full_stack() {
    // Logical CNOT over 3 intermediate data positions, rewritten to the
    // dynamic gadget, compiled, and verified on the state vector.
    let mut logical = Circuit::new(3, 3);
    logical.x(0);
    logical.cx(0, 2); // long range
    logical.measure(2, 0);
    let physical = map_to_physical(&logical, &LongRangeConfig::default()).unwrap();
    let n = physical.circuit.num_qubits();
    let topo = linear(n);
    let compiled = compile_bisp(&physical.circuit, &topo, &BispOptions::default()).unwrap();

    for seed in [1, 7, 42] {
        let mut system = build_system(&compiled, Some(&topo)).unwrap();
        system.set_backend(StateVectorBackend::new(n, seed));
        let report = system.run().unwrap();
        assert!(report.all_halted, "{:?}", report.blocked);
        assert_eq!(report.causality_warnings, 0);
        let t0 = hisq_isa::Reg::parse("t0").unwrap();
        // Target (physical site 4) must read 1: CNOT fired from |1>.
        assert_eq!(system.controller(4).unwrap().reg(t0), 1, "seed {seed}");
    }
}

#[test]
fn two_qubit_triggers_commit_simultaneously() {
    // Asymmetric prologues: controller 0 does lots of work first. BISP
    // must still commit both CZ halves at the same cycle.
    let mut circuit = Circuit::new(2, 1);
    for _ in 0..7 {
        circuit.h(0);
    }
    circuit.cz(0, 1);
    let topo = linear(2);
    let compiled = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap();
    let mut system = build_system(&compiled, Some(&topo)).unwrap();
    let report = system.run().unwrap();
    assert!(report.all_halted);
    let telf = system.telf();
    // The CZ trigger is the last commit on each controller.
    let last0 = telf.commits_of(0).last().unwrap().cycle;
    let last1 = telf.commits_of(1).last().unwrap().cycle;
    assert_eq!(last0, last1, "CZ halves must align at cycle level");
}

#[test]
fn booking_advance_never_slower() {
    // The BISP booking advance must not increase the makespan on any
    // quick-suite workload.
    for bench in fig15_suite(SuiteScale::Quick) {
        let topo = bench.topology();
        let with = compile_bisp(&bench.physical, &topo, &BispOptions::default()).unwrap();
        let without = compile_bisp(
            &bench.physical,
            &topo,
            &BispOptions {
                booking_advance: false,
                ..BispOptions::default()
            },
        )
        .unwrap();
        let run = |compiled| {
            let mut system = build_system(&compiled, Some(&topo)).unwrap();
            system.set_backend(distributed_hisq::sim::RandomBackend::new(3, 0.5));
            let report = system.run().unwrap();
            assert!(report.all_halted, "{}: {:?}", bench.name, report.blocked);
            report.makespan_cycles
        };
        let t_with = run(with);
        let t_without = run(without);
        assert!(
            t_with <= t_without,
            "{}: booking advance slower ({t_with} > {t_without})",
            bench.name
        );
    }
}

#[test]
fn quick_suite_runs_on_both_schemes() {
    let mut results: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for bench in fig15_suite(SuiteScale::Quick) {
        let topo = bench.topology();
        let bisp = compile_bisp(&bench.physical, &topo, &BispOptions::default()).unwrap();
        let lockstep = compile_lockstep(&bench.physical, &LockstepOptions::default()).unwrap();

        let mut sys_b = build_system(&bisp, Some(&topo)).unwrap();
        sys_b.set_backend(distributed_hisq::sim::RandomBackend::new(1, 0.5));
        let rep_b = sys_b.run().unwrap();
        assert!(rep_b.all_halted, "{} bisp: {:?}", bench.name, rep_b.blocked);

        let mut sys_l = build_system(&lockstep, None).unwrap();
        sys_l.set_backend(distributed_hisq::sim::RandomBackend::new(1, 0.5));
        let rep_l = sys_l.run().unwrap();
        assert!(
            rep_l.all_halted,
            "{} lockstep: {:?}",
            bench.name, rep_l.blocked
        );

        results.insert(
            bench.name.clone(),
            (rep_b.makespan_cycles, rep_l.makespan_cycles),
        );
    }
    // Feedback-heavy workloads must favour Distributed-HISQ; the
    // simultaneous-feedback QEC case must show a clear win.
    let (bisp_t, lock_t) = results["logical_t_d3x2"];
    assert!(
        bisp_t < lock_t,
        "parallel logical-T: BISP {bisp_t} vs lock-step {lock_t}"
    );
}
