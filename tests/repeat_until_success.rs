//! Repeat-until-success (§2.1.2): the paper's argument against the
//! time-reserving lock-step flavour is that it "cannot support
//! repeat-until-success circuits with non-deterministic number of
//! feedback loops". Distributed-HISQ handles them natively: a
//! controller loops measure→branch until success while its *partner*
//! re-synchronizes on demand each round, with no compile-time bound on
//! the loop count.

use distributed_hisq::core::{NodeConfig, MEAS_FIFO_ADDR};
use distributed_hisq::isa::{Assembler, Reg};
use distributed_hisq::sim::{FixedBackend, MeasBinding, System, SystemSpec};

/// Builds the two-controller RUS system: controller 0 retries a
/// heralded preparation until the measurement reads 1, then fires the
/// synchronized gate with controller 1; controller 1 syncs once.
fn rus_system(outcomes: Vec<bool>) -> System {
    let rus = format!(
        "
        li t1, 0              # attempt counter
    retry:
        addi t1, t1, 1
        cw.i.i 4, 1           # heralded preparation + measurement
        waiti 75
        recv t0, {meas}
        beqz t0, retry        # failure herald: try again
        sync 1                # success: align with the partner
        waiti 6
        cw.i.i 0, 9           # the synchronized operation
        stop
        ",
        meas = MEAS_FIFO_ADDR
    );
    let partner = "
        sync 0
        waiti 6
        cw.i.i 0, 9
        stop
    ";
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0).with_neighbor(1, 6),
        Assembler::new().assemble(&rus).unwrap().insts().to_vec(),
    );
    spec.controller(
        NodeConfig::new(1).with_neighbor(0, 6),
        Assembler::new().assemble(partner).unwrap().insts().to_vec(),
    );
    spec.bind_measurement_port(
        0,
        4,
        MeasBinding {
            qubit: 0,
            result_latency: 75,
        },
    );
    let mut system = spec.build().expect("builds");
    let mut backend = FixedBackend::new(true);
    backend.script(0, outcomes);
    system.set_backend(backend);
    system
}

#[test]
fn rus_loops_until_the_herald_succeeds() {
    for failures in [0usize, 1, 2, 5, 11] {
        let mut outcomes = vec![false; failures];
        outcomes.push(true);
        let mut system = rus_system(outcomes);
        let report = system.run().expect("runs");
        assert!(
            report.all_halted,
            "failures={failures}: {:?}",
            report.blocked
        );

        // The attempt counter must reflect the non-deterministic loop
        // count — unknowable at compile time.
        let attempts = system.controller(0).unwrap().reg(Reg::parse("t1").unwrap());
        assert_eq!(attempts as usize, failures + 1);

        // And the synchronized operations still align at cycle level.
        let telf = system.telf();
        let c0 = telf.channel(0, 0)[0].cycle;
        let c1 = telf.channel(1, 0)[0].cycle;
        assert_eq!(c0, c1, "failures={failures}: RUS success gate aligned");

        // More failures → later success, monotonically.
        if failures > 0 {
            assert!(
                c0 > (failures as u64) * 75,
                "each retry costs at least a measurement window"
            );
        }
    }
}

#[test]
fn rus_runtime_scales_with_attempt_count() {
    let run = |failures: usize| -> u64 {
        let mut outcomes = vec![false; failures];
        outcomes.push(true);
        let mut system = rus_system(outcomes);
        let report = system.run().expect("runs");
        assert!(report.all_halted);
        report.makespan_cycles
    };
    let one = run(0);
    let four = run(3);
    let eight = run(7);
    assert!(one < four && four < eight, "runtime grows with retries");
    // Each extra retry costs roughly one measurement round (75 cycles +
    // overheads); check linear growth within a tolerant band.
    let per_retry = (eight - four) as f64 / 4.0;
    assert!(
        (75.0..300.0).contains(&per_retry),
        "per-retry cost {per_retry} cycles"
    );
}
