//! CI determinism guards for the parallel sweep engine: a
//! multi-threaded sweep must produce byte-identical aggregate JSON to
//! the single-threaded run with the same seeds, regardless of how the
//! worker pool interleaves scenarios; with the default (transparent)
//! link model the figure JSON is additionally pinned byte-for-byte to
//! the pre-link-model engine's output; and the contention sweep itself
//! is deterministic and shows the hub saturating faster than BISP.

use distributed_hisq::compiler::Scheme;
use distributed_hisq::runner::{run_sweep, Scenario};
use distributed_hisq::sim::SweepGrid;
use distributed_hisq::testing::assert_pinned;
use distributed_hisq::workloads::{SuiteScale, WorkloadSpec};

/// The full quick suite under both schemes at three seeds:
/// 6 × 2 × 3 = 36 scenarios (the acceptance floor is 32).
fn scenario_grid() -> Vec<Scenario> {
    SweepGrid::new(Scenario::new(WorkloadSpec::suite(""), Scheme::Bisp))
        .axis(WorkloadSpec::suite_specs(SuiteScale::Quick), |s, w| {
            s.workload = w.clone()
        })
        .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
            s.scheme = scheme
        })
        .axis([1u64, 7, 15], |s, &seed| s.seed = seed)
        .into_points()
}

#[test]
fn multi_threaded_sweep_json_is_byte_identical_to_single_threaded() {
    let scenarios = scenario_grid();
    assert!(
        scenarios.len() >= 32,
        "grid must cover at least 32 scenarios, got {}",
        scenarios.len()
    );

    let single = run_sweep(&scenarios, 1).expect("grid runs").to_json();
    let report = run_sweep(&scenarios, 4).expect("grid runs");
    assert_eq!(
        single,
        report.to_json(),
        "thread count must not leak into results"
    );

    // The guard is only meaningful if the sweep actually ran: every
    // scenario halted and reported the standard metrics.
    assert_eq!(report.records().len(), scenarios.len());
    assert_eq!(
        report.summary()["all_halted"].sum,
        scenarios.len() as f64,
        "every scenario must run to completion"
    );
    assert!(report.summary()["makespan_cycles"].min > 0.0);
}

#[test]
fn scenario_ids_are_unique_and_stable() {
    let scenarios = scenario_grid();
    let report = run_sweep(&scenarios, 2).expect("grid runs");
    let mut ids: Vec<&str> = report.records().iter().map(|r| r.id.as_str()).collect();
    // Records arrive in scenario order and ids match the descriptors.
    for (scenario, record) in scenarios.iter().zip(report.records()) {
        assert_eq!(scenario.id(), record.id);
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), scenarios.len(), "scenario ids must be unique");
}

/// With `LinkModel::default()` the engine must reproduce the
/// pre-link-model (PR-3) figure JSON byte-for-byte. The pinned hash is
/// the FNV-1a of `fig15 --quick --threads 2 --json` captured on the
/// PR-3 engine; the fig15 quick grid (the full quick suite under both
/// schemes at seed 15) exercises mesh, tree, and star sends end to end.
#[test]
fn default_link_model_reproduces_pr3_fig15_json_byte_for_byte() {
    let scenarios =
        SweepGrid::new(Scenario::new(WorkloadSpec::suite(""), Scheme::Bisp).with_seed(15))
            .axis(WorkloadSpec::suite_specs(SuiteScale::Quick), |s, w| {
                s.workload = w.clone()
            })
            .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
                s.scheme = scheme
            })
            .into_points();
    let json = run_sweep(&scenarios, 2).expect("grid runs").to_json();
    assert_pinned("fig15 quick JSON", &json, 3303, 0x4949_f6c3_c624_03d5);
}
