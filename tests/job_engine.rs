//! Scheduler-invariant battery for the multi-tenant job engine
//! (`distributed_hisq::load`), proptest over arrival seeds × partition
//! counts × queue bounds × horizons:
//!
//! - **Job conservation** — submitted = completed + rejected +
//!   in-flight, at the horizon and after a full drain (where in-flight
//!   is zero).
//! - **Partition exclusivity** — no two concurrent jobs share a
//!   controller partition (completed service intervals on one
//!   partition never overlap, and a job still running at the horizon
//!   starts after the partition's last completion).
//! - **FIFO within a priority class** — jobs of one class start in
//!   arrival order.
//! - **Monotone starts per partition** — a partition's start times
//!   never decrease.
//! - **Replayability** — the same scenario re-runs to the identical
//!   outcome, job for job.
//!
//! Service times are seeded exponential proxies: the invariants are
//! about the scheduler, not the simulated machine, and the proxy keeps
//! the battery wide (hundreds of engine runs) and fast.

use std::collections::BTreeMap;

use distributed_hisq::load::{run_load, ArrivalStream, JobOutcome, LoadSpec, ServiceModel};
use distributed_hisq::runner::{CompileCache, Scenario};
use hisq_compiler::Scheme;
use hisq_workloads::WorkloadSpec;
use proptest::prelude::*;

/// A load scenario from primitive draws: two Poisson streams (one per
/// priority class) plus a trace stream, exponential service, and an
/// optional horizon that cuts into the busy period.
fn scenario_from_draws(
    seed: u64,
    partitions: u32,
    queue_capacity: usize,
    rate_per_ms: f64,
    with_horizon: bool,
) -> Scenario {
    let mut spec = LoadSpec::new(
        vec![
            ArrivalStream::poisson(rate_per_ms, 30),
            ArrivalStream::poisson(rate_per_ms / 2.0, 20).with_priority(1),
            ArrivalStream::trace(vec![0, 40_000, 40_000, 90_000]).with_priority(1),
        ],
        partitions,
    )
    .with_queue_capacity(queue_capacity)
    .with_service(ServiceModel::Exponential { mean_ns: 30_000.0 });
    if with_horizon {
        spec = spec.with_horizon_ns(400_000);
    }
    Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp)
        .with_seed(seed)
        .with_load(spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn scheduler_invariants_hold(
        seed in any::<u64>(),
        partitions in 1u32..=6,
        queue_capacity in 0usize..=12,
        rate_per_ms in 1.0f64..120.0,
        with_horizon in any::<bool>(),
    ) {
        let scenario =
            scenario_from_draws(seed, partitions, queue_capacity, rate_per_ms, with_horizon);
        let cache = CompileCache::new();
        let outcome = run_load(&scenario, &cache).expect("load scenario runs");

        // Job conservation: every arrival is accounted for exactly
        // once, and without a horizon the engine drains.
        prop_assert_eq!(
            outcome.submitted(),
            outcome.completed() + outcome.rejected() + outcome.in_flight()
        );
        prop_assert_eq!(
            outcome.admitted(),
            outcome.completed() + outcome.in_flight()
        );
        if !with_horizon {
            prop_assert_eq!(outcome.in_flight(), 0, "a horizon-free run drains");
        }

        // Partition exclusivity + monotone starts: per partition, in
        // start order, each service interval begins at or after the
        // previous one ends — and a job still running at the horizon
        // begins after the partition's last completion.
        let mut by_partition: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
        let mut running: BTreeMap<u32, u64> = BTreeMap::new();
        for job in &outcome.jobs {
            match job.outcome {
                JobOutcome::Completed { partition, start_ns, finish_ns, .. } => {
                    prop_assert!(partition < outcome.partitions);
                    by_partition.entry(partition).or_default().push((start_ns, finish_ns));
                }
                JobOutcome::InFlight { partition: Some(p), start_ns: Some(s) } => {
                    prop_assert!(
                        running.insert(p, s).is_none(),
                        "at most one running job per partition at the horizon"
                    );
                }
                _ => {}
            }
        }
        for (partition, mut intervals) in by_partition {
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                prop_assert!(
                    pair[1].0 >= pair[0].1,
                    "partition {partition}: intervals {pair:?} overlap"
                );
            }
            if let Some(&running_start) = running.get(&partition) {
                let last_finish = intervals.last().expect("nonempty").1;
                prop_assert!(
                    running_start >= last_finish,
                    "partition {partition}: running job started at {running_start} \
                     before last completion {last_finish}"
                );
            }
        }

        // FIFO within a priority class: started jobs of one class
        // start in arrival order.
        let mut last_start: BTreeMap<u32, u64> = BTreeMap::new();
        for job in &outcome.jobs {
            let start = match job.outcome {
                JobOutcome::Completed { start_ns, .. } => start_ns,
                JobOutcome::InFlight { start_ns: Some(s), .. } => s,
                _ => continue,
            };
            if let Some(&prev) = last_start.get(&job.priority) {
                prop_assert!(
                    start >= prev,
                    "priority {}: job {} started at {start} before an earlier \
                     arrival's start {prev}",
                    job.priority,
                    job.job
                );
            }
            last_start.insert(job.priority, start);
        }

        // Replayability: the engine is a pure function of the scenario.
        let replay = run_load(&scenario, &cache).expect("load scenario replays");
        prop_assert_eq!(outcome, replay);
    }
}

/// The drop-newest rejection policy, pinned on a hand-built trace: a
/// full machine plus full queue rejects exactly the arrivals that find
/// it full, never an already-queued job.
#[test]
fn rejection_hits_the_arriving_job() {
    let spec = LoadSpec::new(vec![ArrivalStream::trace(vec![0, 0, 0, 0, 500_000])], 1)
        .with_queue_capacity(1)
        .with_service(ServiceModel::Exponential { mean_ns: 40_000.0 });
    let scenario = Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp)
        .with_seed(3)
        .with_load(spec);
    let outcome = run_load(&scenario, &CompileCache::new()).expect("trace runs");
    let rejected: Vec<usize> = outcome
        .jobs
        .iter()
        .filter(|j| matches!(j.outcome, JobOutcome::Rejected))
        .map(|j| j.job)
        .collect();
    // t=0: job 0 starts, job 1 queues (capacity 1), jobs 2 and 3 are
    // dropped; by t=500000 the burst has drained and job 4 is served.
    assert_eq!(rejected, vec![2, 3]);
    assert_eq!(outcome.completed(), 3);
}
