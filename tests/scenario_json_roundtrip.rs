//! Property and table tests for the scenario-file surface.
//!
//! The contract under test is `from_json(to_json(x)) == x` — for
//! generated [`Scenario`]s (including surgery op lists, contended link
//! models, and noise models) and for [`SystemSpec`]s built from real
//! topologies — plus a table of malformed inputs that must fail with
//! readable, dotted-path errors rather than silently defaulting.

use std::collections::BTreeMap;

use distributed_hisq::runner::{Scenario, SurgeryOp, SystemParams};
use distributed_hisq::scenario::ScenarioFile;
use hisq_compiler::Scheme;
use hisq_json::Json;
use hisq_net::{DropPolicy, LinkModel, TopologyBuilder};
use hisq_quantum::NoiseModel;
use hisq_sim::{BackendSpec, SystemSpec};
use hisq_workloads::WorkloadSpec;
use proptest::prelude::*;

/// Builds a scenario from primitive draws. Every choice point in the
/// scenario grammar (scheme, workload selector, link model, drop
/// policy, noise model, surgery ops, shots) is reachable.
#[allow(clippy::too_many_arguments)]
fn scenario_from_draws(
    scheme_bisp: bool,
    workload_kind: u8,
    seed: u64,
    t1_us: u32,
    shots: u32,
    link_kind: u8,
    noise_kind: u8,
    surgery_kind: u8,
) -> Scenario {
    let workload = match workload_kind % 3 {
        0 => WorkloadSpec::suite("w_state_n12"),
        1 => WorkloadSpec::suite("qft_n10"),
        _ => WorkloadSpec::LongRangeCnots {
            parallel: 1 + (workload_kind as usize % 4),
            span: 2 + (workload_kind as usize % 3),
        },
    };
    let scheme = if scheme_bisp {
        Scheme::Bisp
    } else {
        Scheme::Lockstep
    };
    let params = SystemParams {
        link_model: match link_kind % 3 {
            0 => LinkModel::default(),
            1 => LinkModel::serialized(u64::from(link_kind) + 1).with_capacity(2),
            _ => LinkModel::serialized(4).with_drop(DropPolicy {
                loss_ppm: u32::from(link_kind) * 1000,
                seed: u64::from(link_kind),
                max_attempts: 1 + u32::from(link_kind % 7),
            }),
        },
        noise: match noise_kind % 3 {
            0 => NoiseModel::NOISELESS,
            1 => NoiseModel::NOISELESS.with_gate_errors(0.001, 0.01),
            _ => NoiseModel::NOISELESS
                .with_meas_error(f64::from(noise_kind) / 512.0)
                .with_leak(0.002),
        },
        ..SystemParams::default()
    };
    let mut scenario = Scenario::new(workload, scheme)
        .with_seed(seed)
        .with_t1_us(f64::from(t1_us) + 0.5)
        .with_shots(1 + shots % 5)
        .with_params(params);
    match surgery_kind % 4 {
        0 => {}
        1 => scenario = scenario.with_surgery(SurgeryOp::DropRouterLevel),
        2 => {
            scenario = scenario.with_surgery(SurgeryOp::RewireSubtree {
                subtree: u16::from(surgery_kind),
                new_parent: u16::from(surgery_kind) + 1,
            })
        }
        _ => {
            scenario = scenario
                .with_surgery(SurgeryOp::SwapWorkload {
                    workload: WorkloadSpec::suite("bv_n16"),
                })
                .with_surgery(SurgeryOp::OverrideNoise {
                    noise: NoiseModel::NOISELESS.with_gate_errors(0.002, 0.02),
                })
                .with_surgery(SurgeryOp::OverrideLinkModel {
                    link_model: LinkModel::serialized(8),
                })
        }
    }
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Scenario::from_json(Scenario::to_json(x)) == x`, through both
    /// text renderings (the compact report convention and the pretty
    /// scenario-file convention).
    #[test]
    fn scenario_round_trips_through_json(
        scheme_bisp in any::<bool>(),
        workload_kind in 0u8..=255,
        seed in any::<u64>(),
        t1_us in 1u32..2000,
        kinds in (0u32..10, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let (shots, link_kind, noise_kind, surgery_kind) = kinds;
        let scenario = scenario_from_draws(
            scheme_bisp, workload_kind, seed, t1_us, shots,
            link_kind, noise_kind, surgery_kind,
        );
        for text in [
            scenario.to_json().to_string_compact(),
            scenario.to_json().to_string_pretty(),
        ] {
            let parsed = Json::parse(&text).expect("self-produced JSON parses");
            let back = Scenario::from_json(&parsed, "s").expect("round-trip decodes");
            prop_assert_eq!(&back, &scenario, "{}", text);
        }
    }

    /// A whole scenario *file* (base + axes + repetitions) survives the
    /// same round trip, and the re-read file expands to the identical
    /// scenario list — ids and all.
    #[test]
    fn scenario_file_round_trips_and_expands_identically(
        scheme_bisp in any::<bool>(),
        seeds in proptest::collection::vec(any::<u64>(), 1..4),
        repetitions in 1u64..4,
        surgery_kind in 0u8..=255,
    ) {
        let base = scenario_from_draws(scheme_bisp, 0, 1, 300, 0, 0, 0, surgery_kind);
        let mut file = ScenarioFile::new("prop", base);
        file.repetitions = repetitions;
        file.axes.push(distributed_hisq::scenario::Axis::Seed(seeds));
        let text = file.to_json().to_string_pretty();
        let back = ScenarioFile::parse(&text).expect("file round-trips");
        prop_assert_eq!(&back, &file, "{}", text);
        let ids: Vec<String> = file.expand(None).iter().map(Scenario::id).collect();
        let back_ids: Vec<String> = back.expand(None).iter().map(Scenario::id).collect();
        prop_assert_eq!(ids, back_ids);
    }

    /// `SystemSpec::from_json(SystemSpec::to_json(x)) == x` for specs
    /// built from real grid topologies with varied link parameters and
    /// backends.
    #[test]
    fn system_spec_round_trips_through_json(
        width in 2usize..8,
        height in 1usize..4,
        neighbor_latency in 1u64..20,
        router_latency in 1u64..30,
        backend_kind in 0u8..=255,
        seed in any::<u64>(),
    ) {
        let topology = TopologyBuilder::grid(width, height)
            .neighbor_latency(neighbor_latency)
            .router_latency(router_latency)
            .build();
        let program = hisq_isa::Assembler::new()
            .assemble("addi x1, x0, 7\nsync 2\n")
            .expect("valid program");
        let programs: BTreeMap<_, _> = (0..(width * height) as u16)
            .map(|addr| (addr, program.insts().to_vec()))
            .collect();
        let mut spec = SystemSpec::from_topology(&topology, programs);
        spec.backend(match backend_kind % 3 {
            0 => BackendSpec::Random { seed, p_one: 0.5 },
            1 => BackendSpec::Fixed { outcome: seed % 2 == 0 },
            _ => BackendSpec::Leaky {
                seed,
                p_one: 0.5,
                noise: NoiseModel::NOISELESS.with_leak(0.01).into(),
            },
        });
        let json = spec.to_json().expect("spec serializes");
        for text in [json.to_string_compact(), json.to_string_pretty()] {
            let parsed = Json::parse(&text).expect("self-produced JSON parses");
            let back = SystemSpec::from_json(&parsed, "spec").expect("decodes");
            prop_assert_eq!(&back, &spec, "{}", text);
        }
    }
}

/// Malformed inputs must fail with errors a person editing a scenario
/// file by hand can act on: syntax errors carry line/column, schema
/// errors carry the dotted path of the offending field.
#[test]
fn malformed_scenario_files_fail_readably() {
    let cases: &[(&str, &str)] = &[
        // Truncated document: a parse error with position, not a panic.
        (
            r#"{"schema_version": 1, "name": "x", "base": {"workload"#,
            "line 1",
        ),
        // Duplicate keys are rejected by the parser outright.
        (
            r#"{"schema_version": 1, "schema_version": 1, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "bisp"}}"#,
            "duplicate object key \"schema_version\"",
        ),
        (
            r#"{"schema_version": 1, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "bisp",
                         "seed": 1, "seed": 2}}"#,
            "duplicate object key \"seed\"",
        ),
        // A future schema version fails loudly, naming both versions.
        (
            r#"{"schema_version": 99, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "bisp"}}"#,
            "unsupported schema_version 99 (this build reads version 1)",
        ),
        // Unknown fields are typos, not extension points.
        (
            r#"{"schema_version": 1, "name": "x", "reps": 3,
                "base": {"workload": {"suite": "a"}, "scheme": "bisp"}}"#,
            "unknown field `reps`",
        ),
        (
            r#"{"schema_version": 1, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "bisp",
                         "sched": "greedy"}}"#,
            "scenario.base: unknown field `sched`",
        ),
        (
            r#"{"schema_version": 1, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "bisp",
                         "params": {"link_model": {"serialization": 4}}}}"#,
            "scenario.base.params.link_model: unknown field `serialization`",
        ),
        // Wrong value domains carry their path too.
        (
            r#"{"schema_version": 1, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "bisp", "shots": 0}}"#,
            "scenario.base.shots: shots must be at least 1",
        ),
        (
            r#"{"schema_version": 1, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "turbo"}}"#,
            "unknown scheme \"turbo\"",
        ),
        (
            r#"{"schema_version": 1, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "bisp",
                         "surgery": [{"op": "teleport"}]}}"#,
            "scenario.base.surgery[0].op",
        ),
        (
            r#"{"schema_version": 1, "name": "x",
                "base": {"workload": {"suite": "a"}, "scheme": "bisp"},
                "axes": [{"axis": "shots", "values": [2, 0]}]}"#,
            "scenario.axes[0].values[1]: shots must be at least 1",
        ),
    ];
    for (text, needle) in cases {
        let err = ScenarioFile::parse(text).expect_err(text);
        let message = err.to_string();
        assert!(
            message.contains(needle),
            "expected {needle:?} in error for {text}\n-> {message}"
        );
    }
}

/// The report id segments added by non-default fields (shots, link
/// model, noise, surgery) never collide with the historical
/// default-model form — the sweep engine requires unique ids.
#[test]
fn grid_point_ids_stay_unique_across_axes() {
    let file = ScenarioFile::parse(
        r#"{
            "schema_version": 1,
            "name": "uniq",
            "base": {"workload": {"suite": "w_state_n12"}, "scheme": "bisp"},
            "axes": [
                {"axis": "scheme", "values": ["bisp", "lockstep"]},
                {"axis": "shots", "values": [1, 2]},
                {"axis": "link_model", "values": [
                    {"serialization_ns": 0, "capacity": 1},
                    {"serialization_ns": 4, "capacity": 1},
                    {"serialization_ns": 4, "capacity": 2}
                ]},
                {"axis": "surgery", "values": [[], [{"op": "drop_router_level"}]]}
            ]
        }"#,
    )
    .expect("valid file");
    let ids: Vec<String> = file.expand(None).iter().map(Scenario::id).collect();
    let unique: std::collections::BTreeSet<&String> = ids.iter().collect();
    assert_eq!(ids.len(), 24);
    assert_eq!(unique.len(), ids.len(), "{ids:#?}");
}
