//! The compile-cache differential suite: a sweep served from the
//! shared [`CompileCache`] must be **byte-identical** to one that
//! compiles every grid point fresh — on one thread and on four — and
//! equal [`CompileKey`]s must mean the compiler emitted bit-identical
//! program words.
//!
//! The scenario inputs are the committed golden corpus
//! (`scenarios/*.json`), so the cache is exercised against exactly the
//! grids the byte-replay CI gate runs: scheme twins, seed repetitions,
//! link-model axes, noise axes, and surgery axes.

use proptest::prelude::*;

use distributed_hisq::runner::{
    compile_scenario, run_sweep_cached, run_sweep_uncached, CompileCache, Scenario, SurgeryOp,
    SystemParams,
};
use distributed_hisq::scenario::ScenarioFile;
use distributed_hisq::workloads::WorkloadSpec;
use hisq_compiler::Scheme;

/// Workspace-root path of the committed scenario corpus.
const CORPUS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");

/// Every committed golden-corpus scenario file, expanded.
fn corpus_grids() -> Vec<(String, Vec<Scenario>)> {
    let mut names: Vec<String> = std::fs::read_dir(CORPUS_DIR)
        .expect("scenarios/ exists")
        .filter_map(|entry| {
            let name = entry.expect("corpus entry").file_name();
            let name = name.to_string_lossy().into_owned();
            name.ends_with(".json").then_some(name)
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "golden corpus is populated");
    names
        .into_iter()
        .map(|name| {
            let text =
                std::fs::read_to_string(format!("{CORPUS_DIR}/{name}")).expect("corpus file reads");
            let file = ScenarioFile::parse(&text).expect("corpus file parses");
            (name, file.expand(None))
        })
        .collect()
}

#[test]
fn cached_sweeps_are_byte_identical_to_uncached_on_1_and_4_threads() {
    for (name, scenarios) in corpus_grids() {
        let reference = run_sweep_uncached(&scenarios, 1)
            .unwrap_or_else(|e| panic!("{name}: uncached sweep: {e}"))
            .to_json();
        for threads in [1usize, 4] {
            let cache = CompileCache::new();
            let cached = run_sweep_cached(&scenarios, threads, &cache)
                .unwrap_or_else(|e| panic!("{name}: cached sweep ({threads} threads): {e}"))
                .to_json();
            assert_eq!(
                cached, reference,
                "{name}: cached sweep on {threads} thread(s) drifted from fresh compiles"
            );
            assert_eq!(
                cache.hits() + cache.misses(),
                scenarios.len() as u64,
                "{name}: every grid point consults the cache"
            );
            assert!(
                cache.misses() <= scenarios.len() as u64,
                "{name}: at most one compile per grid point"
            );
        }
    }
}

#[test]
fn seed_repetitions_share_one_compile() {
    // A seed×noise-style grid: 6 seeds over one compiled program.
    let base = Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp);
    let scenarios: Vec<Scenario> = (1..=6u64)
        .map(|seed| base.clone().with_seed(seed))
        .collect();
    let cache = CompileCache::new();
    run_sweep_cached(&scenarios, 2, &cache).expect("sweep runs");
    assert_eq!(cache.misses(), 1, "one compile for the whole seed axis");
    assert_eq!(cache.hits(), 5, "every other grid point reuses it");
}

#[test]
fn cached_compile_errors_replay_with_each_scenarios_own_id() {
    // An invalid surgery op fails the compile stage; both seeds of the
    // key must report the error under their *own* ids, cached or not.
    let bad = Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp).with_surgery(
        SurgeryOp::RewireSubtree {
            subtree: 0,
            new_parent: 0,
        },
    );
    let scenarios = [bad.clone().with_seed(1), bad.with_seed(2)];
    let uncached = run_sweep_uncached(&scenarios, 1).expect_err("surgery is invalid");
    let cached =
        run_sweep_cached(&scenarios, 1, &CompileCache::new()).expect_err("surgery is invalid");
    assert_eq!(cached, uncached, "cached errors replay verbatim");
    assert!(
        cached.to_string().contains("seed1"),
        "first failure in scenario order carries its id: {cached}"
    );
}

/// Strategy over scenarios that share a handful of compile-relevant
/// knobs, so random pairs collide on their [`CompileKey`]s often
/// enough to exercise the implication in both directions.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![Just("w_state_n12"), Just("qft_n10")],
        prop_oneof![Just(Scheme::Bisp), Just(Scheme::Lockstep)],
        1..3u32,
        prop_oneof![Just((5u64, 10u64)), Just((7, 14))],
        0..100u64,
        prop_oneof![Just(25u64), Just(40)],
    )
        .prop_map(|(suite, scheme, shots, (neighbor, router), seed, star)| {
            let mut scenario = Scenario::new(WorkloadSpec::suite(suite), scheme).with_shots(shots);
            scenario.seed = seed;
            scenario.params = SystemParams {
                neighbor_latency: neighbor,
                router_latency: router,
                star_up_latency: star,
                star_down_latency: star,
                ..SystemParams::default()
            };
            scenario
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equal compile keys ⇒ the compiler emitted bit-identical program
    /// words (per-controller machine code, compared via the compiled
    /// artifact's FNV fingerprint).
    #[test]
    fn equal_compile_keys_mean_identical_program_words(
        a in scenario_strategy(),
        b in scenario_strategy(),
    ) {
        if a.compile_key() == b.compile_key() {
            let fp_a = compile_scenario(&a).expect("a compiles").fingerprint();
            let fp_b = compile_scenario(&b).expect("b compiles").fingerprint();
            prop_assert_eq!(fp_a, fp_b, "key-equal scenarios compiled differently");
        }
    }

    /// A scenario's key is insensitive to its run-stage axes: varying
    /// seed (above) — and here t1 — never changes the key, so those
    /// sweeps always share one artifact.
    #[test]
    fn run_stage_axes_do_not_split_the_key(scenario in scenario_strategy(), t1 in 1.0..500.0f64) {
        let retimed = scenario.clone().with_t1_us(t1).with_seed(scenario.seed ^ 0xffff);
        prop_assert_eq!(scenario.compile_key(), retimed.compile_key());
    }
}
