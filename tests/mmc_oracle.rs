//! Analytic M/M/c oracle for the job engine: at low utilization with
//! exponential service proxies, the DES's mean job latency must match
//! the closed-form M/M/c prediction — Poisson arrivals onto c
//! partitions with exponential service is *exactly* the M/M/c queue,
//! so queueing theory supplies an independent ground truth no amount
//! of scheduler code can argue with.
//!
//! With c = 3 partitions, mean service 1/μ = 50 µs, and offered load
//! ρ = 0.3 (λ = 18 jobs/ms), Erlang C gives P(wait) ≈ 0.0700, mean
//! queueing delay Wq = C/(cμ − λ) ≈ 1.67 µs, and mean sojourn
//! W = Wq + 1/μ ≈ 51.7 µs. 20 000 jobs put the sampling error of the
//! mean near 0.7%, so a 5% tolerance is comfortable but not hollow.

use distributed_hisq::load::{run_load, ArrivalStream, LoadSpec, ServiceModel};
use distributed_hisq::runner::{CompileCache, Scenario};
use hisq_compiler::Scheme;
use hisq_workloads::WorkloadSpec;

/// Erlang C (probability an arrival waits) for `c` servers at offered
/// traffic `a = λ/μ` erlangs, via the stable Erlang B recurrence
/// `B(k) = a·B(k−1) / (k + a·B(k−1))`.
fn erlang_c(c: u32, a: f64) -> f64 {
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (f64::from(k) + a * b);
    }
    let rho = a / f64::from(c);
    b / (1.0 - rho * (1.0 - b))
}

#[test]
fn mean_latency_matches_the_mmc_closed_form() {
    const PARTITIONS: u32 = 3;
    const MEAN_SERVICE_NS: f64 = 50_000.0;
    const RHO: f64 = 0.3;
    const JOBS: u64 = 20_000;

    // λ = ρ·c·μ, expressed per millisecond for the arrival stream.
    let rate_per_ms = RHO * f64::from(PARTITIONS) * 1e6 / MEAN_SERVICE_NS;
    let spec = LoadSpec::new(vec![ArrivalStream::poisson(rate_per_ms, JOBS)], PARTITIONS)
        // Effectively infinite queue: M/M/c, not M/M/c/K.
        .with_queue_capacity(usize::MAX)
        .with_service(ServiceModel::Exponential {
            mean_ns: MEAN_SERVICE_NS,
        });
    let scenario = Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp)
        .with_seed(20_260_808)
        .with_load(spec);
    let outcome = run_load(&scenario, &CompileCache::new()).expect("M/M/c scenario runs");
    assert_eq!(outcome.completed(), JOBS, "nothing rejected, nothing stuck");

    let a = RHO * f64::from(PARTITIONS); // offered erlangs λ/μ
    let mu_per_ns = 1.0 / MEAN_SERVICE_NS;
    let lambda_per_ns = RHO * f64::from(PARTITIONS) * mu_per_ns;
    let wq = erlang_c(PARTITIONS, a) / (f64::from(PARTITIONS) * mu_per_ns - lambda_per_ns);
    let w = wq + MEAN_SERVICE_NS;

    let latencies = outcome.latencies_sorted();
    let mean = latencies.iter().map(|&v| v as f64).sum::<f64>() / latencies.len() as f64;
    let error = (mean - w).abs() / w;
    assert!(
        error < 0.05,
        "mean sojourn {mean:.0} ns vs M/M/c prediction {w:.0} ns \
         (relative error {error:.4}, tolerance 0.05)"
    );

    // The measured partition utilization must track ρ as well.
    let util = outcome.utilization();
    assert!(
        (util - RHO).abs() < 0.03,
        "measured utilization {util:.4} vs offered load {RHO}"
    );
}
