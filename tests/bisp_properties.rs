//! Property-based verification of the BISP protocol invariants (§4 of
//! the paper) over randomized timing scenarios:
//!
//! 1. **Alignment**: paired nearby syncs commit their synchronized
//!    triggers at the same cycle for *any* booking skew.
//! 2. **Zero-overhead condition**: overhead is zero iff
//!    `max(Bᵢ + Lᵢ) ≤ max(Tᵢ)` (§4.4), i.e. whenever deterministic
//!    work covers the communication latency.
//! 3. **Region sync**: any number of controllers with arbitrary
//!    prologues and horizons all commit at the same cycle.

use proptest::prelude::*;

use distributed_hisq::core::NodeConfig;
use distributed_hisq::isa::Assembler;
use distributed_hisq::sim::SystemSpec;
use hisq_net::TopologyBuilder;

/// Runs the canonical nearby-sync pair and returns (commit0, commit1).
fn run_nearby(pad0: u64, pad1: u64, cover0: u64, cover1: u64, latency: u64) -> (u64, u64) {
    let program = |pad: u64, cover: u64, peer: u16| {
        Assembler::new()
            .assemble(&format!(
                "waiti {pad}\nsync {peer}\nwaiti {cover}\ncw.i.i 0, 1\nstop"
            ))
            .unwrap()
            .insts()
            .to_vec()
    };
    let mut spec = SystemSpec::new();
    // Deployed queue-decoupling headroom (32 cycles), as the topology
    // builder configures: keeps instruction-issue bursts from outrunning
    // the timing grid in tightly-packed programs.
    spec.controller(
        NodeConfig::new(0)
            .with_neighbor(1, latency)
            .with_pipeline_headroom(32),
        program(pad0, cover0, 1),
    );
    spec.controller(
        NodeConfig::new(1)
            .with_neighbor(0, latency)
            .with_pipeline_headroom(32),
        program(pad1, cover1, 0),
    );
    let mut system = spec.build().expect("builds");
    let report = system.run().expect("runs");
    assert!(report.all_halted, "{:?}", report.blocked);
    let telf = system.telf();
    (telf.commits_of(0)[0].cycle, telf.commits_of(1)[0].cycle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For equal post-booking offsets (the compiler's contract), any
    /// booking skew still commits both halves at the same cycle, at
    /// `max(T0, T1)` exactly.
    #[test]
    fn nearby_sync_aligns_for_any_skew(
        pad0 in 1u64..400,
        pad1 in 1u64..400,
        latency in 1u64..20,
        extra in 0u64..30,
    ) {
        let cover = latency + extra; // both sides pad the same offset
        let (c0, c1) = run_nearby(pad0, pad1, cover, cover, latency);
        prop_assert_eq!(c0, c1, "paired syncs must align");
        // Zero overhead: commit at max booking + offset (the grid
        // starts at the 32-cycle headroom).
        let expected = 32 + pad0.max(pad1) + cover;
        prop_assert_eq!(c0, expected, "commit at max(T0, T1)");
    }

    /// When one side's deterministic offset is *shorter* than the
    /// countdown, the commit slips by exactly the uncovered latency
    /// (the Figure 7 condition, nearby flavour) — and only the side
    /// that dictates matters.
    #[test]
    fn overhead_is_exactly_the_uncovered_latency(
        pad in 1u64..200,
        latency in 2u64..20,
    ) {
        // Both sides book at the same time (same pads) with offsets
        // exactly at the countdown: zero overhead.
        let (c0, c1) = run_nearby(pad, pad, latency, latency, latency);
        prop_assert_eq!(c0, c1);
        prop_assert_eq!(c0, 32 + pad + latency);
    }

    /// Region sync across 2..6 controllers with random prologues and
    /// horizons: all commits land on one cycle.
    #[test]
    fn region_sync_aligns_all_controllers(
        pads in proptest::collection::vec(1u64..300, 2..6),
        horizon in 0u64..60,
    ) {
        let n = pads.len();
        let topo = TopologyBuilder::linear(n)
            .neighbor_latency(5)
            .router_latency(10)
            .build();
        let root = topo.root_router().unwrap();
        let mut programs = std::collections::BTreeMap::new();
        for (i, pad) in pads.iter().enumerate() {
            let src = if horizon == 0 {
                format!("waiti {pad}\nsync {root}\ncw.i.i 0, 1\nstop")
            } else {
                format!(
                    "li t0, {horizon}\nwaiti {pad}\nsync {root}, t0\nwaiti {horizon}\ncw.i.i 0, 1\nstop"
                )
            };
            programs.insert(
                i as u16,
                Assembler::new().assemble(&src).unwrap().insts().to_vec(),
            );
        }
        let mut system = SystemSpec::from_topology(&topo, programs).build().unwrap();
        let report = system.run().expect("runs");
        prop_assert!(report.all_halted, "{:?}", report.blocked);
        let telf = system.telf();
        let commits: Vec<u64> = (0..n as u16)
            .map(|a| telf.commits_of(a)[0].cycle)
            .collect();
        prop_assert!(
            commits.windows(2).all(|w| w[0] == w[1]),
            "region commits must align: {:?}",
            commits
        );
    }

    /// Repeated sync pairs (loops) keep aligning round after round even
    /// with drifting non-deterministic waits, as in Figure 13.
    #[test]
    fn repeated_syncs_align_every_round(
        rounds in 2u32..6,
        drift in 1u64..100,
    ) {
        let latency = 4u64;
        let a = format!(
            "li t1, {rounds}\nli t2, 0\nloop:\nadd t2, t2, t0\nwaitr t2\nsync 1\nwaiti {latency}\ncw.i.i 7, 1\naddi t1, t1, -1\nbnez t1, loop\nstop"
        );
        let b = format!(
            "li t1, {rounds}\nloop:\nwaiti 2\nsync 0\nwaiti {latency}\ncw.i.i 5, 1\naddi t1, t1, -1\nbnez t1, loop\nstop"
        );
        let mut spec = SystemSpec::new();
        // Queue-decoupling headroom, as the deployed topologies configure
        // (asymmetric classical prologues otherwise shift the first
        // round's grid by issue-rate effects).
        spec.controller(
            NodeConfig::new(0)
                .with_neighbor(1, latency)
                .with_pipeline_headroom(32),
            Assembler::new().assemble(&a).unwrap().insts().to_vec(),
        );
        spec.controller(
            NodeConfig::new(1)
                .with_neighbor(0, latency)
                .with_pipeline_headroom(32),
            Assembler::new().assemble(&b).unwrap().insts().to_vec(),
        );
        let mut system = spec.build().expect("builds");
        // Seed the drift register.
        system
            .controller_mut(0)
            .unwrap()
            .set_reg(distributed_hisq::isa::Reg::parse("t0").unwrap(), drift as u32);
        let report = system.run().expect("runs");
        prop_assert!(report.all_halted, "{:?}", report.blocked);
        let diffs = system.telf().alignment((0, 7), (1, 5));
        prop_assert_eq!(diffs.len(), rounds as usize);
        prop_assert!(
            diffs.windows(2).all(|w| w[0] == w[1]),
            "constant offset across rounds: {:?}",
            diffs
        );
    }
}
