//! Heterogeneous-fabric contract tests: the per-edge/per-qubit maps
//! must be invisible when uniform (byte-identical reports, no new id
//! segments, thread-count independent), visible only where heated
//! (one heated element perturbs exactly the scenarios routing through
//! it), and every distinguishing knob — drop policies included — must
//! reach the scenario id.

use distributed_hisq::runner::{
    effective_maps, run_sweep, LinkOverride, NoiseOverride, Scenario, SurgeryOp,
};
use distributed_hisq::scenario::ScenarioFile;
use hisq_compiler::Scheme;
use hisq_net::{DropPolicy, LinkModel};
use hisq_quantum::NoiseModel;
use hisq_workloads::WorkloadSpec;
use proptest::prelude::*;

fn hot_link(seed: u64) -> LinkModel {
    LinkModel::serialized(512).with_drop(DropPolicy {
        loss_ppm: 300_000,
        seed,
        max_attempts: 10,
    })
}

/// Two `OverrideLinkModel` surgeries differing *only* in their drop
/// policy must yield distinct scenario ids — the sweep engine requires
/// unique ids, and a drop policy changes every downstream byte.
#[test]
fn override_link_model_ids_distinguish_drop_policies() {
    let base = || Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp).with_seed(3);
    let with_drop = |drop: Option<DropPolicy>| {
        let mut model = LinkModel::serialized(8);
        model.drop = drop;
        base()
            .with_surgery(SurgeryOp::OverrideLinkModel { link_model: model })
            .id()
    };
    let policy = DropPolicy {
        loss_ppm: 1000,
        seed: 1,
        max_attempts: 3,
    };
    let ids = [
        with_drop(None),
        with_drop(Some(policy)),
        with_drop(Some(DropPolicy { seed: 2, ..policy })),
        with_drop(Some(DropPolicy {
            loss_ppm: 2000,
            ..policy
        })),
        with_drop(Some(DropPolicy {
            max_attempts: 4,
            ..policy
        })),
    ];
    let unique: std::collections::BTreeSet<&String> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "{ids:#?}");
}

/// Every committed golden-corpus scenario expands to uniform fabric
/// and noise maps and carries none of the heterogeneous-fabric id
/// segments — so the corpus replay gate (`ci/check_scenarios.sh`,
/// byte-comparing 1- and 4-thread runs against committed reports)
/// keeps pinning the uniform maps to the legacy single-model engine.
#[test]
fn golden_corpus_scenarios_stay_on_uniform_maps() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable scenario file");
        let file = ScenarioFile::parse(&text).expect("committed corpus parses");
        for scenario in file.expand(None) {
            let (fabric, noise) = effective_maps(&scenario);
            let id = scenario.id();
            // hetero_fabric.json is the corpus file that *does* heat
            // elements; every other file must stay uniform.
            if path.file_stem().and_then(|s| s.to_str()) == Some("hetero_fabric") {
                continue;
            }
            assert!(fabric.is_uniform(), "{id}: non-uniform fabric map");
            assert!(noise.is_uniform(), "{id}: non-uniform noise map");
            // Override segments are `lo<from>-<to>.…` / `no<qubit>.…`;
            // a prefix check alone would trip on `lockstep`.
            let is_override_segment = |segment: &str| {
                segment == "aware"
                    || ["lo", "no"].iter().any(|prefix| {
                        segment
                            .strip_prefix(prefix)
                            .is_some_and(|rest| rest.starts_with(|c: char| c.is_ascii_digit()))
                    })
            };
            assert!(
                !id.split('/').any(is_override_segment),
                "{id}: uniform scenario grew an override segment"
            );
            checked += 1;
        }
    }
    assert!(checked >= 20, "corpus unexpectedly small: {checked}");
}

/// The `fabric_aware` flag alone must never change what a uniform
/// scenario computes: the planner sees a flat fabric, keeps the
/// identity placement, and every metric matches the oblivious twin
/// byte-for-byte (only the `/aware` id segment differs).
#[test]
fn aware_flag_alone_never_changes_uniform_metrics() {
    let mut oblivious = Scenario::new(WorkloadSpec::suite("qft_n10"), Scheme::Bisp).with_seed(11);
    oblivious.params.link_model = LinkModel::serialized(4);
    oblivious.params.noise = NoiseModel::NOISELESS.with_gate_errors(1e-4, 1e-3);
    let mut aware = oblivious.clone();
    aware.params.fabric_aware = true;

    let report = run_sweep(&[oblivious, aware], 1).expect("pair runs");
    let [obl, awr] = report.records() else {
        panic!("two records");
    };
    assert_eq!(format!("{}/aware", obl.id), awr.id);
    let strip_id = |json: &str, id: &str| json.replacen(id, "<id>", 1);
    assert_eq!(
        strip_id(&obl.to_json(), &obl.id),
        strip_id(&awr.to_json(), &awr.id),
        "aware flag must be metric-invisible on a uniform fabric"
    );
}

/// One heated *edge* perturbs exactly the scenario routing through it:
/// in a three-scenario sweep where only the middle scenario heats an
/// edge, the flanking records are byte-identical to the all-uniform
/// replay of the same sweep.
#[test]
fn one_heated_edge_changes_only_reports_routing_through_it() {
    let scenarios = |heated: bool| {
        let mut middle = Scenario::new(WorkloadSpec::suite("adder_n13"), Scheme::Bisp).with_seed(5);
        middle.params.link_model = LinkModel::serialized(4);
        if heated {
            middle.params.link_overrides = vec![
                LinkOverride {
                    from: 4,
                    to: 5,
                    link_model: hot_link(9),
                },
                LinkOverride {
                    from: 5,
                    to: 4,
                    link_model: hot_link(10),
                },
            ];
        }
        let mut flank_a =
            Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp).with_seed(5);
        flank_a.params.link_model = LinkModel::serialized(4);
        let mut flank_b =
            Scenario::new(WorkloadSpec::suite("qft_n10"), Scheme::Lockstep).with_seed(5);
        flank_b.params.link_model = LinkModel::serialized(4);
        vec![flank_a, middle, flank_b]
    };
    let uniform = run_sweep(&scenarios(false), 2).expect("uniform sweep runs");
    let heated = run_sweep(&scenarios(true), 2).expect("heated sweep runs");
    for (u, h) in [(0usize, 0usize), (2, 2)] {
        assert_eq!(
            uniform.records()[u].to_json(),
            heated.records()[h].to_json(),
            "a heated edge in another scenario leaked into record {u}"
        );
    }
    let (u, h) = (&uniform.records()[1], &heated.records()[1]);
    assert_ne!(u.id, h.id, "the heated scenario must carry a /lo segment");
    assert!(h.id.contains("/lo4-5."), "{}", h.id);
    assert!(
        h.counter("makespan_ns") > u.counter("makespan_ns"),
        "serializing + dropping a hot edge must cost makespan: {:?} vs {:?}",
        h.counter("makespan_ns"),
        u.counter("makespan_ns")
    );
}

/// One heated *qubit* perturbs exactly the scenario whose work runs on
/// it, and only through the per-qubit error accounting: the flanking
/// records of a three-scenario sweep are byte-identical to the
/// all-uniform replay.
#[test]
fn one_heated_qubit_changes_only_reports_running_on_it() {
    let base_noise = NoiseModel::NOISELESS
        .with_gate_errors(1e-5, 1e-4)
        .with_meas_error(1e-4);
    let scenarios = |heated: bool| {
        let mut middle = Scenario::new(WorkloadSpec::suite("adder_n13"), Scheme::Bisp).with_seed(5);
        middle.params.noise = base_noise;
        if heated {
            middle.params.noise_overrides = vec![NoiseOverride {
                qubit: 5,
                noise: base_noise.with_meas_error(0.05),
            }];
        }
        let mut flank_a =
            Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp).with_seed(5);
        flank_a.params.noise = base_noise;
        let mut flank_b = Scenario::new(WorkloadSpec::suite("bv_n16"), Scheme::Bisp).with_seed(5);
        flank_b.params.noise = base_noise;
        vec![flank_a, middle, flank_b]
    };
    let uniform = run_sweep(&scenarios(false), 2).expect("uniform sweep runs");
    let heated = run_sweep(&scenarios(true), 2).expect("heated sweep runs");
    for i in [0usize, 2] {
        assert_eq!(
            uniform.records()[i].to_json(),
            heated.records()[i].to_json(),
            "a heated qubit in another scenario leaked into record {i}"
        );
    }
    let (u, h) = (&uniform.records()[1], &heated.records()[1]);
    assert!(h.id.contains("/no5."), "{}", h.id);
    let (u_inf, h_inf) = (
        u.value("noise_infidelity").expect("noise metrics"),
        h.value("noise_infidelity").expect("noise metrics"),
    );
    assert!(
        h_inf > u_inf,
        "heating a busy qubit must raise expected infidelity: {h_inf} vs {u_inf}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scenarios whose override lists are empty resolve to uniform
    /// maps, gain no id segments, and sweep byte-identically on 1 and
    /// 4 threads — the uniform-fabric determinism contract, hit from
    /// randomly drawn link/noise parameters.
    #[test]
    fn uniform_scenarios_are_thread_and_segment_invariant(
        seed in 0u64..1000,
        serialization in prop_oneof![Just(0u64), 1u64..16],
        p1q in prop_oneof![Just(0.0), Just(1e-4), Just(1e-3)],
        aware in any::<bool>(),
    ) {
        let mut scenario =
            Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp).with_seed(seed);
        scenario.params.link_model = LinkModel::serialized(serialization);
        scenario.params.noise = NoiseModel::NOISELESS.with_gate_errors(p1q, 10.0 * p1q);
        scenario.params.fabric_aware = aware;
        let (fabric, noise) = effective_maps(&scenario);
        prop_assert!(fabric.is_uniform());
        prop_assert!(noise.is_uniform());
        let id = scenario.id();
        prop_assert!(!id.contains("/lo"), "{}", id);
        prop_assert!(!id.contains("/no"), "{}", id);
        prop_assert_eq!(id.contains("/aware"), aware);
        let scenarios = [scenario];
        let single = run_sweep(&scenarios, 1).expect("runs").to_json();
        let quad = run_sweep(&scenarios, 4).expect("runs").to_json();
        prop_assert_eq!(single, quad);
    }
}
