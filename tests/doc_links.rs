//! Link checker for the workspace documentation: every relative
//! markdown link in `README.md` and `docs/*.md` must point at a file
//! (or directory) that exists in the repository, so the docs map and
//! the figure-reproduction guide cannot rot silently. CI runs this
//! suite explicitly (`cargo test --test doc_links`) as the
//! link-checker gate.

use std::path::{Path, PathBuf};

/// The documents under link-checking (workspace-relative).
fn documents() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![root.join("README.md")];
    let dir = root.join("docs");
    let entries = std::fs::read_dir(&dir).expect("docs/ exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push(path);
        }
    }
    docs.sort();
    docs
}

/// Extracts every inline markdown link target (`[text](target)`) from
/// `source`, ignoring images' leading `!` (the target syntax is the
/// same).
fn link_targets(source: &str) -> Vec<String> {
    let bytes = source.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(len) = source[start..].find(')') {
                targets.push(source[start..start + len].to_string());
                i = start + len;
                continue;
            }
        }
        i += 1;
    }
    targets
}

#[test]
fn relative_markdown_links_resolve() {
    let mut checked = 0usize;
    let mut broken = Vec::new();
    for doc in documents() {
        let source =
            std::fs::read_to_string(&doc).unwrap_or_else(|e| panic!("{}: {e}", doc.display()));
        let base = doc.parent().expect("documents live in a directory");
        for target in link_targets(&source) {
            // External links and pure in-page anchors are out of scope
            // (the checker is offline); only file links are verified.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or(&target);
            if path.is_empty() {
                continue;
            }
            checked += 1;
            if !base.join(path).exists() {
                broken.push(format!("{}: {target}", doc.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
    assert!(
        checked >= 10,
        "the docs should carry at least a handful of relative links \
         (found {checked}); did the extractor break?"
    );
}

#[test]
fn extractor_sees_inline_links() {
    let targets = link_targets("see [a](x.md), ![img](y.png) and [b](docs/z.md#frag)");
    assert_eq!(targets, vec!["x.md", "y.png", "docs/z.md#frag"]);
}

#[test]
fn figures_doc_names_every_bench_binary() {
    // docs/FIGURES.md is the figure → binary map; every bin in
    // crates/hisq-bench/src/bin must appear in it, so a new figure
    // binary cannot ship undocumented.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let figures = std::fs::read_to_string(root.join("docs/FIGURES.md")).expect("FIGURES.md");
    let bins = std::fs::read_dir(root.join("crates/hisq-bench/src/bin")).expect("bin dir");
    for entry in bins {
        let path = entry.expect("readable bin entry").path();
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("bin names are UTF-8");
        assert!(
            figures.contains(name),
            "docs/FIGURES.md does not mention bench binary `{name}`"
        );
    }
}
